"""Blind-walk baselines expressed through the shared walk engine."""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import DegreeBiasedPolicy, RandomWalkPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore
from repro.utils.rng import RngLike


def random_walk_query(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    query_id: Hashable = None,
    seed: RngLike = None,
) -> SearchResult:
    """A single blind random walk with the same TTL/memory semantics."""
    config = config or WalkConfig()
    return run_query(
        adjacency,
        stores,
        RandomWalkPolicy(),
        query_embedding,
        start_node,
        config,
        query_id=query_id,
        seed=seed,
    )


def parallel_random_walks(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    query_embedding: np.ndarray,
    start_node: int,
    *,
    n_walkers: int,
    ttl: int = 50,
    k: int = 1,
    query_id: Hashable = None,
    seed: RngLike = None,
) -> SearchResult:
    """k-parallel blind walks: the classic flooding/walk compromise."""
    config = WalkConfig(ttl=ttl, fanout=n_walkers, k=k)
    return run_query(
        adjacency,
        stores,
        RandomWalkPolicy(),
        query_embedding,
        start_node,
        config,
        query_id=query_id,
        seed=seed,
    )


def degree_biased_walk(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    query_id: Hashable = None,
    seed: RngLike = None,
) -> SearchResult:
    """Hub-seeking walk (Adamic et al.): forward to the highest-degree peer."""
    config = config or WalkConfig()
    return run_query(
        adjacency,
        stores,
        DegreeBiasedPolicy(adjacency),
        query_embedding,
        start_node,
        config,
        query_id=query_id,
        seed=seed,
    )
