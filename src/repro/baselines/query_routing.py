"""Query-oriented informed routing: the §II-A alternative to diffusion.

In query-oriented methods "nodes store information of passing queries and
their results and, when a new query arrives, it is forwarded to the most
successful route travelled by similar past queries" (paper §II-A, citing
Kalogeraki et al. and Li & Wu).  Their advantage is storing nothing about
unpopular documents; their weakness is blindness to unseen queries — the
cold-start problem the paper calls out.

:class:`QueryRoutingTable` implements the per-node cache: a bounded set of
(query embedding, neighbor, reward) exemplars with exponential decay.
:class:`LearnedRoutingPolicy` scores a candidate neighbor by the
similarity-weighted reward of cached exemplars that routed through it, and
explores uniformly when the cache has nothing relevant.  ``train()`` replays
a workload of queries, reinforcing the hop sequences of successful walks —
the comparison harness can then measure cold vs warm behaviour against the
diffusion scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import ForwardingPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.scoring import top_k_indices
from repro.retrieval.vector_store import DocumentStore
from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


@dataclass
class CachedRoute:
    """One exemplar: a past query that succeeded through ``neighbor``."""

    embedding: np.ndarray
    neighbor: int
    reward: float


@dataclass
class QueryRoutingTable:
    """A node's bounded memory of successful past queries."""

    capacity: int = 50
    decay: float = 0.98
    entries: list[CachedRoute] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._matrix: np.ndarray | None = None  # stacked entry embeddings

    def record(self, embedding: np.ndarray, neighbor: int, reward: float) -> None:
        """Cache a successful routing decision (evicting the weakest entry)."""
        for entry in self.entries:
            entry.reward *= self.decay
        self.entries.append(
            CachedRoute(np.asarray(embedding, dtype=np.float64), int(neighbor), reward)
        )
        if len(self.entries) > self.capacity:
            weakest = min(range(len(self.entries)), key=lambda i: self.entries[i].reward)
            self.entries.pop(weakest)
        self._matrix = None  # invalidate the scoring cache

    def score_neighbors(
        self, query_embedding: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Similarity-weighted cached reward per candidate (0 when unknown)."""
        scores = np.zeros(candidates.shape[0], dtype=np.float64)
        if not self.entries:
            return scores
        if self._matrix is None:
            self._matrix = np.vstack([entry.embedding for entry in self.entries])
        similarities = np.maximum(self._matrix @ query_embedding, 0.0)
        rewards = np.asarray([entry.reward for entry in self.entries])
        weights = similarities * rewards
        position = {int(c): i for i, c in enumerate(candidates)}
        for entry, weight in zip(self.entries, weights):
            slot = position.get(entry.neighbor)
            if slot is not None:
                scores[slot] += weight
        return scores


class LearnedRoutingPolicy(ForwardingPolicy):
    """Forward along the most successful route of similar past queries.

    Cold nodes (no relevant cache entries) fall back to uniform random
    forwarding — exactly the cold-start behaviour §II-A describes.
    """

    def __init__(
        self,
        adjacency: CompressedAdjacency,
        *,
        capacity: int = 50,
        decay: float = 0.98,
        epsilon: float = 0.05,
    ) -> None:
        check_positive(capacity, "capacity")
        check_probability(decay, "decay", inclusive=False)
        check_probability(epsilon, "epsilon")
        self.adjacency = adjacency
        self.tables: dict[int, QueryRoutingTable] = {}
        self.capacity = int(capacity)
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._current_node: int | None = None

    # The engine calls select() without telling the policy *whose* decision
    # it is; stateful routing needs that, so the trainer walks nodes manually
    # via route_from().
    def table_of(self, node: int) -> QueryRoutingTable:
        table = self.tables.get(node)
        if table is None:
            table = self.tables[node] = QueryRoutingTable(self.capacity, self.decay)
        return table

    def route_from(
        self,
        node: int,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Pick the next hop from ``node`` (explore with prob. epsilon)."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            raise ValueError("no candidates to route to")
        scores = self.table_of(node).score_neighbors(query_embedding, candidates)
        if scores.max() <= 0.0 or rng.random() < self.epsilon:
            return int(candidates[rng.integers(candidates.size)])
        return int(candidates[top_k_indices(scores, 1)[0]])

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Engine-compatible single-hop selection for the current node set by
        # the walker below.
        if self._current_node is None:
            raise RuntimeError("use learned_routing_walk(); the policy is stateful")
        chosen = self.route_from(self._current_node, query_embedding, candidates, rng)
        return np.asarray([chosen], dtype=np.int64)

    def describe(self) -> str:
        return "learned-routing"


def learned_routing_walk(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    policy: LearnedRoutingPolicy,
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    gold_doc: Hashable | None = None,
    learn: bool = True,
    query_id: Hashable = None,
    seed: RngLike = None,
) -> SearchResult:
    """Run one query with per-node learned routing, optionally reinforcing.

    Executes the Fig. 1 walk with the policy consulted *at each node*; when
    ``learn`` and the walk finds ``gold_doc``, every node on the path up to
    the discovery reinforces the hop it chose (reward discounted by the
    remaining distance, so earlier, more general decisions learn less than
    the final precise ones).
    """
    config = config or WalkConfig()
    rng = ensure_rng(seed)
    query_embedding = np.asarray(query_embedding, dtype=np.float64)

    # A tiny wrapper class would hide the node; simpler: drive the engine
    # hop by hop ourselves, mirroring run_query's semantics exactly.
    from repro.retrieval.topk import TopKTracker

    tracker = TopKTracker(config.k)
    result = SearchResult(
        query_id=query_id, start_node=int(start_node), tracker=tracker, visits=[]
    )
    memory: dict[int, set[int]] = {}
    decisions: list[tuple[int, int]] = []  # (node, chosen neighbor)

    node, ttl = int(start_node), config.ttl
    hop = 0
    while True:
        result.visits.append((hop, node))
        store = stores.get(node)
        if store is not None:
            for doc_id, score in store.top_k(query_embedding, config.k):
                tracker.offer(doc_id, score, node)
                result.discovered_at.setdefault(doc_id, hop)
        ttl -= 1
        if ttl <= 0:
            break
        neighbors = adjacency.neighbors(node)
        if neighbors.size == 0:
            break
        seen = memory.get(node)
        if seen:
            mask = np.isin(neighbors, list(seen), invert=True, assume_unique=True)
            candidates = neighbors[mask]
        else:
            candidates = neighbors
        if candidates.size == 0:
            candidates = neighbors
        target = policy.route_from(node, query_embedding, candidates, rng)
        memory.setdefault(node, set()).add(target)
        memory.setdefault(target, set()).add(node)
        decisions.append((node, target))
        result.messages += 1
        node, hop = target, hop + 1

    if learn and gold_doc is not None and result.found(gold_doc, top=1):
        found_hop = result.hops_to(gold_doc)
        assert found_hop is not None
        for decision_hop, (from_node, to_node) in enumerate(decisions):
            if decision_hop >= found_hop:
                break
            remaining = found_hop - decision_hop
            reward = 1.0 / remaining
            policy.table_of(from_node).record(query_embedding, to_node, reward)
    return result


def train_routing_policy(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    policy: LearnedRoutingPolicy,
    training_queries: list[tuple[np.ndarray, Hashable]],
    *,
    ttl: int = 50,
    k: int = 1,
    seed: RngLike = None,
) -> float:
    """Replay a training workload; returns the training success rate."""
    rng = ensure_rng(seed)
    config = WalkConfig(ttl=ttl, fanout=1, k=k)
    hits = 0
    for query_embedding, gold_doc in training_queries:
        start = int(rng.integers(adjacency.n_nodes))
        result = learned_routing_walk(
            adjacency, stores, policy, query_embedding, start, config,
            gold_doc=gold_doc, learn=True, seed=rng,
        )
        hits += result.found(gold_doc, top=1)
    return hits / max(1, len(training_queries))
