"""Unstructured-search baselines (paper §II-A).

Blind methods the paper positions its scheme against: TTL-bounded flooding
(Gnutella-style), uniform random walks, parallel random walks, and the
hub-seeking degree-biased walk.  All return the same
:class:`repro.core.engine.SearchResult` so harnesses compare them directly.
"""

from repro.baselines.flooding import flood_query
from repro.baselines.walks import (
    degree_biased_walk,
    parallel_random_walks,
    random_walk_query,
)
from repro.baselines.query_routing import (
    LearnedRoutingPolicy,
    QueryRoutingTable,
    learned_routing_walk,
    train_routing_policy,
)

__all__ = [
    "flood_query",
    "random_walk_query",
    "parallel_random_walks",
    "degree_biased_walk",
    "LearnedRoutingPolicy",
    "QueryRoutingTable",
    "learned_routing_walk",
    "train_routing_policy",
]
