"""TTL-bounded flooding: the Gnutella baseline.

Flooding forwards the query to *every* neighbor within a hop budget.  It
finds everything reachable within the radius but its message cost grows with
the neighborhood size — the scalability failure that motivated informed
methods (paper §II-A).  Hop semantics match the walk engine: a query with
TTL ``t`` evaluates nodes at hops ``0 .. t−1``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping

import numpy as np

from repro.core.engine import SearchResult, WalkConfig
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.topk import TopKTracker
from repro.retrieval.vector_store import DocumentStore


def flood_query(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    query_id: Hashable = None,
    max_messages: int | None = None,
) -> SearchResult:
    """Flood a query from ``start_node`` with the given TTL.

    Each node forwards the query once to all neighbors except the one it
    received it from (duplicate deliveries still cost messages, as in real
    flooding, but are not re-processed).  ``max_messages`` optionally caps
    the message budget — used by the equal-budget baseline comparison.
    """
    config = config or WalkConfig()
    query_embedding = np.asarray(query_embedding, dtype=np.float64)
    if not 0 <= start_node < adjacency.n_nodes:
        raise ValueError(f"start_node {start_node} out of range")

    tracker = TopKTracker(config.k)
    result = SearchResult(
        query_id=query_id,
        start_node=int(start_node),
        tracker=tracker,
        visits=[],
    )
    processed: set[int] = set()
    # queue of (node, hop, received_from)
    queue: deque[tuple[int, int, int | None]] = deque()
    queue.append((int(start_node), 0, None))
    budget_exhausted = False

    while queue:
        node, hop, received_from = queue.popleft()
        if node in processed:
            continue  # duplicate delivery: already evaluated, drop silently
        processed.add(node)
        result.visits.append((hop, node))
        store = stores.get(node)
        if store is not None:
            for doc_id, score in store.top_k(query_embedding, config.k):
                tracker.offer(doc_id, score, node)
                result.discovered_at.setdefault(doc_id, hop)
        ttl_after = config.ttl - hop - 1
        if ttl_after <= 0 or budget_exhausted:
            continue
        for neighbor in adjacency.neighbors(node):
            neighbor = int(neighbor)
            if neighbor == received_from:
                continue
            if max_messages is not None and result.messages >= max_messages:
                budget_exhausted = True
                break
            result.messages += 1
            if neighbor not in processed:
                queue.append((neighbor, hop + 1, node))

    return result
