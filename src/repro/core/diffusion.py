"""Diffusion facade: one call covering all three execution strategies.

* ``power`` — synchronous iteration of eq. (7); what a coordinated network
  round-by-round execution would compute.
* ``solve`` — exact sparse solve of eq. (6); ground truth.
* ``async`` — the decentralized event-driven protocol of
  :class:`repro.runtime.gossip.AsyncPPRDiffusion`; what the real P2P network
  runs.  All three agree to within tolerance (verified by tests), so
  experiments may use the cheapest one without changing semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import NormalizationKind, transition_matrix
from repro.runtime.gossip import AsyncPPRDiffusion
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class DiffusionOutcome:
    """Diffused embeddings plus cost diagnostics.

    ``iterations`` counts power-iteration sweeps (or 1 for the exact solve);
    ``messages``/``events`` are populated only by the async strategy.
    """

    embeddings: np.ndarray
    method: str
    alpha: float
    iterations: int
    residual: float
    converged: bool
    messages: int = 0
    events: int = 0
    sim_time: float = 0.0


def diffuse_embeddings(
    topology: CompressedAdjacency,
    personalization: np.ndarray,
    *,
    alpha: float = 0.5,
    method: str = "power",
    normalization: NormalizationKind = "column",
    tol: float = 1e-8,
    max_iterations: int = 10_000,
    latency: LatencyModel | None = None,
    seed: RngLike = None,
) -> DiffusionOutcome:
    """Diffuse node personalization vectors with the PPR filter (eq. 6).

    Parameters mirror the paper's: ``alpha`` is the teleport probability
    (0.1 = heavy, 0.5 = moderate, 0.9 = light diffusion in §V-C).
    """
    personalization = np.asarray(personalization, dtype=np.float64)
    if personalization.ndim == 1:
        personalization = personalization[:, None]
    if personalization.shape[0] != topology.n_nodes:
        raise ValueError(
            f"personalization has {personalization.shape[0]} rows for "
            f"{topology.n_nodes} nodes"
        )

    if method in ("power", "solve"):
        operator = transition_matrix(topology, normalization)
        ppr = PersonalizedPageRank(
            alpha, tol=tol, max_iterations=max_iterations, method=method
        )
        detail = ppr.apply_detailed(operator, personalization)
        return DiffusionOutcome(
            embeddings=np.asarray(detail.signal),
            method=method,
            alpha=alpha,
            iterations=detail.iterations,
            residual=detail.residual,
            converged=detail.converged,
        )

    if method == "async":
        if normalization != "column":
            raise ValueError(
                "the decentralized protocol implements column normalization; "
                f"got {normalization!r}"
            )
        protocol = AsyncPPRDiffusion(
            topology,
            personalization,
            alpha=alpha,
            tol=tol,
            latency=latency,
            seed=seed,
        )
        outcome = protocol.run(max_events=max_iterations * topology.n_nodes)
        return DiffusionOutcome(
            embeddings=outcome.embeddings,
            method="async",
            alpha=alpha,
            iterations=outcome.events,
            residual=outcome.residual,
            converged=outcome.residual < 10 * tol * max(1, topology.n_nodes),
            messages=outcome.messages,
            events=outcome.events,
            sim_time=outcome.time,
        )

    raise ValueError(f"method must be 'power', 'solve' or 'async', got {method!r}")
