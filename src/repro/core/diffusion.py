"""Diffusion facade: one call dispatching over pluggable execution backends.

Built-in strategies (see :mod:`repro.core.backends`):

* ``power`` — synchronous iteration of eq. (7); what a coordinated network
  round-by-round execution would compute.
* ``solve`` — exact sparse solve of eq. (6); ground truth.
* ``async`` — the decentralized event-driven protocol of
  :class:`repro.runtime.gossip.AsyncPPRDiffusion`; what the real P2P network
  runs.
* ``push`` — residual Forward Push / Gauss–Southwell
  (:mod:`repro.gsp.push`); supports incremental refresh from sparse
  personalization deltas via :func:`refresh_embeddings`.
* ``sparse`` — pruned CSR power iteration
  (:class:`repro.gsp.filters.SparsePersonalizedPageRank`); personalization
  and embeddings stay in ``scipy.sparse`` form end to end, so precompute
  memory and work scale with the diffused support instead of
  ``n_nodes × dim``.
* ``sharded`` — community-partitioned parallel precompute
  (:mod:`repro.core.shard`); the overlay is cut into shards, each shard
  runs the ``sparse`` kernel on its slice of the global operator (across a
  forked process pool), and cross-shard push residuals are exchanged
  between rounds until the global residual drains — exact up to the inner
  backend's own tolerance/pruning.

All strategies agree to within tolerance (verified by tests), so experiments
may use the cheapest one without changing semantics.  Additional strategies
register through :func:`repro.core.backends.register_backend` and become
addressable by ``method=`` name here without any call-site change; ``method``
also accepts a pre-built :class:`DiffusionBackend` instance for backends with
constructor knobs (e.g. ``SparseDiffusionBackend(epsilon=1e-5)``).

Sparse inputs: a ``scipy.sparse`` personalization (or delta) passes through
untouched to backends that declare ``accepts_sparse`` and is densified for
the others, so callers can always hand over the cheapest representation they
hold.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.backends import get_backend
from repro.core.backends.base import DiffusionBackend, DiffusionOutcome
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import coerce_signal
from repro.gsp.normalization import NormalizationKind
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike

__all__ = ["DiffusionOutcome", "diffuse_embeddings", "refresh_embeddings"]


def resolve_backend(method: str | DiffusionBackend) -> DiffusionBackend:
    """Resolve a ``method=`` argument: registry name or pre-built instance."""
    if isinstance(method, DiffusionBackend):
        return method
    return get_backend(method)


def _coerce_for_backend(
    signal: np.ndarray | sp.spmatrix,
    n_nodes: int,
    backend: DiffusionBackend,
) -> np.ndarray | sp.spmatrix:
    """Match the signal representation to what the backend accepts.

    Sparse matrices pass through to ``accepts_sparse`` backends and densify
    for the others; dense inputs are validated/coerced as before (sparse
    backends accept dense input too and convert internally).
    """
    if sp.issparse(signal):
        if signal.shape[0] != n_nodes:
            raise ValueError(
                f"signal must have {n_nodes} rows, got shape {signal.shape}"
            )
        if backend.accepts_sparse:
            return signal
        return np.asarray(signal.todense(), dtype=np.float64)
    coerced, _ = coerce_signal(signal, n_nodes)
    return coerced


def diffuse_embeddings(
    topology: CompressedAdjacency,
    personalization: np.ndarray | sp.spmatrix,
    *,
    alpha: float = 0.5,
    method: str | DiffusionBackend = "power",
    normalization: NormalizationKind = "column",
    tol: float = 1e-8,
    max_iterations: int = 10_000,
    latency: LatencyModel | None = None,
    seed: RngLike = None,
) -> DiffusionOutcome:
    """Diffuse node personalization vectors with the PPR filter (eq. 6).

    Parameters mirror the paper's: ``alpha`` is the teleport probability
    (0.1 = heavy, 0.5 = moderate, 0.9 = light diffusion in §V-C).
    ``method`` names a registered :class:`~repro.core.backends.DiffusionBackend`
    (or is one).  ``personalization`` may be a ``scipy.sparse`` matrix; it
    reaches ``accepts_sparse`` backends (``method="sparse"``) without ever
    densifying.
    """
    backend = resolve_backend(method)
    personalization = _coerce_for_backend(
        personalization, topology.n_nodes, backend
    )
    return backend.diffuse(
        topology,
        personalization,
        alpha=alpha,
        normalization=normalization,
        tol=tol,
        max_iterations=max_iterations,
        latency=latency,
        seed=seed,
    )


def refresh_embeddings(
    topology: CompressedAdjacency,
    embeddings: np.ndarray | sp.spmatrix,
    delta: np.ndarray | sp.spmatrix,
    *,
    alpha: float = 0.5,
    method: str | DiffusionBackend = "push",
    normalization: NormalizationKind = "column",
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> DiffusionOutcome:
    """Patch diffused ``embeddings`` for a sparse personalization change.

    ``delta`` is the row-wise difference between the new and the previously
    diffused personalization matrix (zero outside the changed nodes); by
    linearity the corrected diffusion is ``embeddings + H delta``, computed
    at a cost proportional to the change.  Requires a backend with
    ``supports_incremental`` (built-in: ``push``, ``sparse``, ``sharded``).
    """
    backend = resolve_backend(method)
    if not backend.supports_incremental:
        raise ValueError(
            f"diffusion method {backend.name!r} does not support incremental "
            "refresh; use method='push', method='sparse', method='sharded', "
            "or a custom incremental backend"
        )
    delta = _coerce_for_backend(delta, topology.n_nodes, backend)
    # The embeddings pass through uncoerced for dense backends so a 1-D
    # cache comes back 1-D (the backend's own shape handling restores it);
    # only a sparse cache headed for a dense backend needs densification.
    if sp.issparse(embeddings) and not backend.accepts_sparse:
        embeddings = np.asarray(embeddings.todense(), dtype=np.float64)
    return backend.refresh(
        topology,
        embeddings,
        delta,
        alpha=alpha,
        normalization=normalization,
        tol=tol,
        max_iterations=max_iterations,
    )
