"""Diffusion facade: one call dispatching over pluggable execution backends.

Built-in strategies (see :mod:`repro.core.backends`):

* ``power`` — synchronous iteration of eq. (7); what a coordinated network
  round-by-round execution would compute.
* ``solve`` — exact sparse solve of eq. (6); ground truth.
* ``async`` — the decentralized event-driven protocol of
  :class:`repro.runtime.gossip.AsyncPPRDiffusion`; what the real P2P network
  runs.
* ``push`` — residual Forward Push / Gauss–Southwell
  (:mod:`repro.gsp.push`); supports incremental refresh from sparse
  personalization deltas via :func:`refresh_embeddings`.

All strategies agree to within tolerance (verified by tests), so experiments
may use the cheapest one without changing semantics.  Additional strategies
register through :func:`repro.core.backends.register_backend` and become
addressable by ``method=`` name here without any call-site change.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import get_backend
from repro.core.backends.base import DiffusionOutcome
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import coerce_signal
from repro.gsp.normalization import NormalizationKind
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike

__all__ = ["DiffusionOutcome", "diffuse_embeddings", "refresh_embeddings"]


def diffuse_embeddings(
    topology: CompressedAdjacency,
    personalization: np.ndarray,
    *,
    alpha: float = 0.5,
    method: str = "power",
    normalization: NormalizationKind = "column",
    tol: float = 1e-8,
    max_iterations: int = 10_000,
    latency: LatencyModel | None = None,
    seed: RngLike = None,
) -> DiffusionOutcome:
    """Diffuse node personalization vectors with the PPR filter (eq. 6).

    Parameters mirror the paper's: ``alpha`` is the teleport probability
    (0.1 = heavy, 0.5 = moderate, 0.9 = light diffusion in §V-C).
    ``method`` names a registered :class:`~repro.core.backends.DiffusionBackend`.
    """
    personalization, _ = coerce_signal(personalization, topology.n_nodes)
    backend = get_backend(method)
    return backend.diffuse(
        topology,
        personalization,
        alpha=alpha,
        normalization=normalization,
        tol=tol,
        max_iterations=max_iterations,
        latency=latency,
        seed=seed,
    )


def refresh_embeddings(
    topology: CompressedAdjacency,
    embeddings: np.ndarray,
    delta: np.ndarray,
    *,
    alpha: float = 0.5,
    method: str = "push",
    normalization: NormalizationKind = "column",
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> DiffusionOutcome:
    """Patch diffused ``embeddings`` for a sparse personalization change.

    ``delta`` is the row-wise difference between the new and the previously
    diffused personalization matrix (zero outside the changed nodes); by
    linearity the corrected diffusion is ``embeddings + H delta``, computed
    at a cost proportional to the change.  Requires a backend with
    ``supports_incremental`` (built-in: ``push``).
    """
    delta, _ = coerce_signal(delta, topology.n_nodes)
    backend = get_backend(method)
    if not backend.supports_incremental:
        raise ValueError(
            f"diffusion method {method!r} does not support incremental "
            "refresh; use method='push' or a custom incremental backend"
        )
    return backend.refresh(
        topology,
        embeddings,
        delta,
        alpha=alpha,
        normalization=normalization,
        tol=tol,
        max_iterations=max_iterations,
    )
