"""Batched walk engine: B independent TTL-bounded walks in lockstep.

:func:`run_queries` executes the exact Fig. 1 protocol of
:func:`repro.core.engine.run_query` for a whole batch of queries at once,
replacing the per-walk Python loop with structure-of-arrays state:

* the frontier is a pair of flat arrays (query index, node) advanced one hop
  at a time — TTL and fanout are uniform across a hop, so they live as
  scalars, not arrays;
* neighbor candidates are gathered straight from the CSR arrays of
  :class:`~repro.graphs.adjacency.CompressedAdjacency` for every active
  walker in one shot;
* the per-(query, node) neighbor memory of paper §IV-C is a flat boolean
  matrix over (query, directed CSR edge) — membership tests and the
  symmetric "received from / forwarded to" marks become array indexing
  (via :attr:`~repro.graphs.adjacency.CompressedAdjacency.reverse_edge_positions`)
  instead of dict-of-set operations;
* next hops are chosen through :meth:`ForwardingPolicy.select_batch`, which
  the built-in policies implement with array-level per-segment top-k (and
  which falls back to scalar ``select`` calls for custom policies).  When
  every walk runs a :class:`PrecomputedScorePolicy` — the experiment hot
  path — selection short-circuits to one fused segment-argmax over a
  stacked score table, no per-walk Python at all; the table is a dense
  matrix for dense-backed policies or a composite-key CSR lookup for
  sparse-backed ones, so the sparse pipeline's walks never densify their
  scores per hop.

Equivalence contract, pinned by ``tests/unit/test_batch_engine.py``: for
deterministic policies every :class:`SearchResult` field is bit-identical to
the scalar engine's; stochastic policies draw from per-walk generators
spawned from ``seed`` (one independent stream per walk), so each walk is
distributionally equivalent to a scalar walk with its own seed.

Memory note: the visited-edge matrix is ``B × 2·n_edges`` booleans.  When a
batch would exceed :data:`VISITED_BUDGET_BYTES` (default 64 MB) it is split
into chunks transparently, so arbitrarily large batches run in bounded
memory; the experiment drivers use batches of at most a few dozen walks.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.engine import SearchResult, WalkConfig
from repro.core.forwarding import (
    ForwardingPolicy,
    PrecomputedScorePolicy,
    _segment_top_k,
    lookup_sorted_keys,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.kernels import dispatch as kernels
from repro.retrieval.topk import TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["run_queries"]

#: Cap on the per-call visited-edge matrix (B × 2·n_edges booleans); batches
#: that would exceed it are split into independent chunks.
VISITED_BUDGET_BYTES = 64 * 1024 * 1024


def _within_query_ranks(queries: np.ndarray) -> np.ndarray:
    """Rank of each frontier entry among entries of the same query.

    The scalar engine pops same-hop walkers of one query in FIFO order, so a
    later walker sees the memory marks of an earlier one.  Ranks split a hop
    into sub-rounds that replay exactly that order (rank r of every query
    runs before rank r + 1).  Only needed past the source hop with
    fanout > 1; otherwise every query has a single walker per hop.
    """
    size = queries.shape[0]
    perm = np.argsort(queries, kind="stable")
    sorted_q = queries[perm]
    new_group = np.empty(size, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_q[1:] != sorted_q[:-1]
    group_starts = np.flatnonzero(new_group)
    group_lens = np.diff(np.append(group_starts, size))
    ranks = np.empty(size, dtype=np.int64)
    ranks[perm] = np.arange(size) - np.repeat(group_starts, group_lens)
    return ranks


def _coerce_policies(
    policies: ForwardingPolicy | Sequence[ForwardingPolicy], batch: int
) -> list[ForwardingPolicy]:
    if isinstance(policies, ForwardingPolicy):
        return [policies] * batch
    policy_list = list(policies)
    if len(policy_list) != batch:
        raise ValueError(
            f"{len(policy_list)} policies for a batch of {batch} queries"
        )
    for policy in policy_list:
        if not isinstance(policy, ForwardingPolicy):
            raise TypeError(f"not a ForwardingPolicy: {policy!r}")
    return policy_list


def _coerce_query_ids(
    query_ids: Hashable | Sequence[Hashable] | None, batch: int
) -> list[Hashable]:
    """One query id per walk; lists/tuples/arrays are per-walk, else shared."""
    if isinstance(query_ids, (list, tuple, np.ndarray)):
        ids = list(query_ids)
        if len(ids) != batch:
            raise ValueError(f"{len(ids)} query ids for a batch of {batch} queries")
        return ids
    return [query_ids] * batch


class _DenseScoreStack:
    """Per-walk dense score rows; ``gather`` is one fancy index."""

    def __init__(self, stack: np.ndarray, rows: np.ndarray) -> None:
        self.stack = stack
        self.rows = rows

    def gather(self, queries: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Score of ``nodes[i]`` under walk ``queries[i]``'s policy."""
        return self.stack[self.rows[queries], nodes]


class _SparseScoreStack:
    """Per-walk CSR score rows, gathered without densifying.

    The stacked rows' (row, node) coordinates collapse into one sorted
    composite-key array (rows are appended in order, node indices are sorted
    within each row), so a whole hop's ``(walk, candidate)`` lookups are a
    single ``searchsorted`` — absent entries score exactly ``0.0``, matching
    what a densified copy would hold.
    """

    def __init__(
        self, keys: np.ndarray, values: np.ndarray, rows: np.ndarray, n_nodes: int
    ) -> None:
        # The composite key of stack row r, node v is r·n_nodes + v; it must
        # fit int64 for every (row, node) pair or gathers would silently
        # wrap around and return the wrong walk's scores.
        max_row = int(rows.max(initial=-1)) + 1
        if n_nodes > 0 and max_row > np.iinfo(np.int64).max // n_nodes:
            raise OverflowError(
                f"sparse score stack of {max_row} distinct policies over "
                f"{n_nodes} nodes overflows the int64 composite-key space "
                f"({max_row} * {n_nodes} > {np.iinfo(np.int64).max}); "
                "split the batch into smaller policy groups"
            )
        self.keys = keys
        self.values = values
        self.rows = rows
        self.n_nodes = n_nodes

    def gather(self, queries: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Score of ``nodes[i]`` under walk ``queries[i]``'s policy."""
        wanted = self.rows[queries] * np.int64(self.n_nodes) + nodes
        return lookup_sorted_keys(self.keys, self.values, wanted)


def _precomputed_stack(
    policy_list: list[ForwardingPolicy], n_nodes: int
) -> _DenseScoreStack | _SparseScoreStack | None:
    """Stack per-walk score vectors when every policy is score-table based.

    Returns a score stack whose ``gather(queries, nodes)`` yields walk
    ``queries[i]``'s score for node ``nodes[i]`` — or None when the batch
    mixes in other policy types (or mixes dense- and sparse-backed score
    tables).  Distinct policy instances share a row when they are the same
    object, so the accuracy driver's one-policy-per-alpha batch stacks to
    one row per alpha.
    """
    row_of: dict[int, int] = {}
    vectors: list = []
    rows = np.empty(len(policy_list), dtype=np.int64)
    sparse_mode: bool | None = None
    for q, policy in enumerate(policy_list):
        if type(policy) is not PrecomputedScorePolicy:
            return None
        if policy.n_nodes != n_nodes:
            return None
        policy_sparse = policy.node_scores is None
        if sparse_mode is None:
            sparse_mode = policy_sparse
        elif sparse_mode != policy_sparse:
            return None
        row = row_of.get(id(policy))
        if row is None:
            table = (
                (policy._sparse_indices, policy._sparse_values)
                if policy_sparse
                else policy.node_scores
            )
            values = table[1] if policy_sparse else table
            if not np.isfinite(values).all():
                # The fused selection uses -inf as its masking sentinel;
                # non-finite scores take the general select_batch path.
                return None
            row = row_of[id(policy)] = len(vectors)
            vectors.append(table)
        rows[q] = row
    if not sparse_mode:
        return _DenseScoreStack(np.stack(vectors), rows)
    keys = np.concatenate(
        [
            np.int64(r) * np.int64(n_nodes) + indices
            for r, (indices, _) in enumerate(vectors)
        ]
    ) if vectors else np.empty(0, dtype=np.int64)
    values = (
        np.concatenate([vals for _, vals in vectors])
        if vectors
        else np.empty(0, dtype=np.float64)
    )
    return _SparseScoreStack(keys, values, rows, n_nodes)


def run_queries(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    policies: ForwardingPolicy | Sequence[ForwardingPolicy],
    query_embeddings: np.ndarray,
    start_nodes: Sequence[int] | np.ndarray,
    config: WalkConfig | None = None,
    *,
    query_ids: Hashable | Sequence[Hashable] | None = None,
    seed: RngLike = None,
    hop_budgets: Sequence[int] | np.ndarray | None = None,
) -> list[SearchResult]:
    """Execute one Fig. 1 walk per start node, all in lockstep.

    Parameters
    ----------
    policies:
        A single :class:`ForwardingPolicy` shared by every walk, or one per
        walk (e.g. one :class:`PrecomputedScorePolicy` per teleport alpha in
        the accuracy experiment).  Walks are grouped by policy each hop, so
        mixed batches still select with one array call per policy.
    query_embeddings:
        ``(dim,)`` for a shared query or ``(B, dim)`` for per-walk queries.
    query_ids:
        ``None``, a single shared id, or a list/tuple/array of ``B`` ids.
    seed:
        Spawned into ``B`` independent per-walk generators (stochastic
        policies only; deterministic policies never draw from them).
    hop_budgets:
        Per-query deadline budgets in hops (``B`` positive ints, or ``None``
        for none): walk ``q``'s horizon is capped at
        ``min(config.ttl, hop_budgets[q])`` visits.  A walk whose cap
        actually bites returns its best-so-far partial with
        ``result.degraded`` and ``result.deadline_hit`` set — exactly the
        scalar engine's ``hop_budget`` semantics, per query.  ``None``
        leaves the batch bit-identical to the unbudgeted engine.

    Returns
    -------
    list[SearchResult]
        One result per start node, index-aligned with ``start_nodes``.
    """
    config = config or WalkConfig()
    start = np.asarray(start_nodes, dtype=np.int64)
    if start.ndim != 1:
        raise ValueError(f"start_nodes must be 1-D, got shape {start.shape}")
    batch = start.shape[0]
    if batch == 0:
        return []
    n_nodes = adjacency.n_nodes
    if np.any((start < 0) | (start >= n_nodes)):
        bad = start[(start < 0) | (start >= n_nodes)][0]
        raise ValueError(f"start_node {int(bad)} out of range")

    embeddings = np.asarray(query_embeddings, dtype=np.float64)
    shared_embedding = embeddings.ndim == 1
    if shared_embedding:
        embeddings = np.broadcast_to(embeddings, (batch, embeddings.shape[0]))
    elif embeddings.ndim != 2 or embeddings.shape[0] != batch:
        raise ValueError(
            f"query_embeddings must be (dim,) or ({batch}, dim), "
            f"got shape {embeddings.shape}"
        )

    policy_list = _coerce_policies(policies, batch)
    ids = _coerce_query_ids(query_ids, batch)

    budgets: np.ndarray | None = None
    if hop_budgets is not None:
        budgets = np.asarray(hop_budgets)
        if budgets.dtype.kind not in "iu":
            raise TypeError(
                f"hop_budgets must be integers, got dtype {budgets.dtype}"
            )
        budgets = budgets.astype(np.int64)
        if budgets.shape != (batch,):
            raise ValueError(
                f"{budgets.shape[0] if budgets.ndim == 1 else budgets.shape} "
                f"hop budgets for a batch of {batch} queries"
            )
        if np.any(budgets < 1):
            raise ValueError(
                "hop_budgets must be >= 1 (a query with no budget left "
                "should be shed before reaching the engine)"
            )

    # Bound the visited-edge matrix: oversized batches split into chunks
    # (per-walk results are independent; each chunk gets an independent
    # child seed, preserving the per-walk-stream contract).
    edge_count = adjacency.indices.shape[0]
    if batch > 1 and batch * edge_count > VISITED_BUDGET_BYTES:
        chunk = max(1, VISITED_BUDGET_BYTES // max(edge_count, 1))
        bounds = range(0, batch, chunk)
        chunk_rngs = spawn_rngs(seed, len(bounds))
        results = []
        for chunk_rng, lo in zip(chunk_rngs, bounds):
            hi = min(lo + chunk, batch)
            results.extend(
                run_queries(
                    adjacency,
                    stores,
                    policy_list[lo:hi],
                    embeddings[lo:hi],
                    start[lo:hi],
                    config,
                    query_ids=ids[lo:hi],
                    seed=chunk_rng,
                    hop_budgets=None if budgets is None else budgets[lo:hi],
                )
            )
        return results

    homogeneous = all(policy is policy_list[0] for policy in policy_list)
    stacked = _precomputed_stack(policy_list, n_nodes)
    # Per-walk generators, spawned only if a policy can actually draw from
    # them (the stacked fast path is deterministic end to end).
    rngs: list[np.random.Generator] | None = (
        None if stacked is not None else spawn_rngs(seed, batch)
    )

    results = [
        SearchResult(
            query_id=ids[q],
            start_node=int(start[q]),
            tracker=TopKTracker(config.k),
            visits=[],
        )
        for q in range(batch)
    ]

    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = adjacency.degrees
    reverse = adjacency.reverse_edge_positions
    # Per-(query, directed edge) neighbor memory (paper §IV-C).
    seen = np.zeros((batch, indices.shape[0]), dtype=bool)

    has_store = np.zeros(n_nodes, dtype=bool)
    for node, store in stores.items():
        if isinstance(node, (int, np.integer)) and 0 <= node < n_nodes and len(store):
            has_store[node] = True

    # Frontier (structure of arrays).  All walkers of a hop share the same
    # remaining TTL (children inherit the parent's decremented TTL) and the
    # same fanout (config.fanout at the source, 1 afterwards), so neither
    # needs a per-walker array.
    cur_q = np.arange(batch, dtype=np.int64)
    cur_node = start.copy()
    hop = 0
    # Index scratch reused across hops (sliced views, never mutated), so the
    # hot loop does not re-allocate an arange per hop.
    iota = np.arange(max(batch, int(degrees.max(initial=0)) * batch), dtype=np.int64)
    isolated_nodes = bool(n_nodes) and int(degrees.min()) == 0

    visit_queries: list[np.ndarray] = []
    visit_nodes: list[np.ndarray] = []
    hop_sizes: list[int] = []
    child_q_log: list[np.ndarray] = []

    while cur_q.size:
        visit_queries.append(cur_q)
        visit_nodes.append(cur_node)
        hop_sizes.append(cur_q.shape[0])

        if config.ttl - hop - 1 <= 0:  # Fig. 1 steps 3/4b
            break
        if budgets is not None:
            # Per-query deadline horizon: retire walkers whose budget is
            # spent.  The global TTL check above already passed, so every
            # entry retired here was cut by its budget, not the TTL — its
            # query's results are best-so-far partials.
            alive = budgets[cur_q] - hop - 1 > 0
            if not alive.all():
                for q in np.unique(cur_q[~alive]).tolist():
                    results[q].degraded = True
                    results[q].deadline_hit = True
                cur_q = cur_q[alive]
                cur_node = cur_node[alive]
                if cur_q.size == 0:
                    break
        fanout_now = config.fanout if hop == 0 else 1
        cur_deg = degrees[cur_node]
        if not isolated_nodes:
            act_q, act_node, act_deg = cur_q, cur_node, cur_deg
        else:
            active = cur_deg > 0
            if active.all():
                act_q, act_node, act_deg = cur_q, cur_node, cur_deg
            else:
                act_q, act_node, act_deg = (
                    cur_q[active],
                    cur_node[active],
                    cur_deg[active],
                )
                if act_q.size == 0:
                    break

        # Sub-rounds replay the scalar FIFO order when one query can field
        # several same-hop walkers (fanout > 1 past the source hop).
        if config.fanout > 1 and hop >= 1:
            ranks = _within_query_ranks(act_q)
            n_rounds = int(ranks.max()) + 1
        else:
            ranks = None
            n_rounds = 1

        round_child_q: list[np.ndarray] = []
        round_child_node: list[np.ndarray] = []
        for sub_round in range(n_rounds):
            if ranks is None:
                r_q, r_node, lens = act_q, act_node, act_deg
            else:
                in_round = ranks == sub_round
                r_q, r_node = act_q[in_round], act_node[in_round]
                lens = act_deg[in_round]
            entries = r_q.shape[0]

            # CSR gather of every walker's neighbor row in one shot.
            seg_ends = lens.cumsum()
            seg_starts = seg_ends - lens
            total = int(seg_ends[-1])
            flat_pos = (indptr[r_node] - seg_starts).repeat(lens) + iota[:total]
            flat_q = r_q.repeat(lens)
            segments = iota[:entries].repeat(lens)

            # Memory filter (paper §IV-C): which candidate edges are still
            # unvisited for their walk.
            unseen = ~seen[flat_q, flat_pos]

            if stacked is not None and fanout_now == 1:
                # Fused fast path: every walk scores candidates from one
                # stacked table, and the memory filter plus footnote-9
                # fallback fold into a -inf mask, so a whole hop selects via
                # one segment argmax (first-position tie-break — exactly
                # top_k_indices(scores, 1) per segment).
                flat_cand = indices[flat_pos]
                scores = stacked.gather(flat_q, flat_cand)
                chosen = kernels.masked_segment_argmax(
                    scores, unseen, seg_starts, segments, iota
                )
                child_q = r_q
                child_pos = flat_pos[chosen]
                child_node = flat_cand[chosen]
                # Symmetric memory marks (Fig. 1 step 4a).
                seen[child_q, child_pos] = True
                seen[child_q, reverse[child_pos]] = True
                round_child_q.append(child_q)
                round_child_node.append(child_node)
                child_q_log.append(child_q)
                continue

            # General path: compress to the per-segment candidate sets
            # (footnote-9 fallback included) and dispatch to the policies.
            if unseen.all():
                kept_pos, kept_q, kept_segments = flat_pos, flat_q, segments
                kept_lens, kept_starts = lens, seg_starts
            else:
                any_unseen = (
                    np.bincount(segments, weights=unseen, minlength=entries) > 0
                )
                keep = unseen | ~any_unseen[segments]
                kept_pos = flat_pos[keep]
                kept_q = flat_q[keep]
                kept_segments = segments[keep]
                kept_lens = np.bincount(kept_segments, minlength=entries)
                kept_starts = kept_lens.cumsum() - kept_lens
            kept_cand = indices[kept_pos]

            if stacked is not None:
                scores = stacked.gather(kept_q, kept_cand)
                kept_offsets = np.concatenate(([0], kept_starts + kept_lens))
                chosen, chosen_offsets = _segment_top_k(
                    scores,
                    kept_offsets,
                    np.full(entries, fanout_now, dtype=np.int64),
                )
                child_q = np.repeat(r_q, np.diff(chosen_offsets))
                child_pos = kept_pos[chosen]
                child_node = kept_cand[chosen]
            else:
                if homogeneous:
                    groups: list[tuple[ForwardingPolicy, np.ndarray]] = [
                        (policy_list[0], np.arange(entries, dtype=np.int64))
                    ]
                else:
                    by_policy: dict[int, list[int]] = {}
                    for j, q in enumerate(r_q.tolist()):
                        by_policy.setdefault(id(policy_list[q]), []).append(j)
                    groups = [
                        (policy_list[r_q[js[0]]], np.asarray(js, dtype=np.int64))
                        for js in by_policy.values()
                    ]
                kept_offsets = np.concatenate(([0], kept_starts + kept_lens))
                cand_parts: list[np.ndarray | None] = [None] * entries
                pos_parts: list[np.ndarray | None] = [None] * entries
                for policy, js in groups:
                    if homogeneous:
                        sub_cand, sub_pos = kept_cand, kept_pos
                        sub_offsets = kept_offsets
                    else:
                        member = np.zeros(entries, dtype=bool)
                        member[js] = True
                        sub_mask = member[kept_segments]
                        sub_cand = kept_cand[sub_mask]
                        sub_pos = kept_pos[sub_mask]
                        sub_offsets = np.concatenate(
                            ([0], np.cumsum(kept_lens[js]))
                        )
                    group_q = r_q[js]
                    chosen, chosen_offsets = policy.select_batch(
                        embeddings[group_q],
                        sub_cand,
                        sub_offsets,
                        np.full(js.shape[0], fanout_now, dtype=np.int64),
                        [rngs[q] for q in group_q.tolist()],
                    )
                    for t, j in enumerate(js.tolist()):
                        span = slice(
                            int(chosen_offsets[t]), int(chosen_offsets[t + 1])
                        )
                        cand_parts[j] = sub_cand[chosen[span]]
                        pos_parts[j] = sub_pos[chosen[span]]
                child_counts = np.asarray(
                    [part.shape[0] for part in cand_parts], dtype=np.int64
                )
                if not child_counts.any():
                    continue
                child_q = np.repeat(r_q, child_counts)
                child_node = np.concatenate(cand_parts)
                child_pos = np.concatenate(pos_parts)

            if child_q.size == 0:
                continue
            # Symmetric memory marks (Fig. 1 step 4a): forwarded-to on the
            # parent row, received-from on the child row.
            seen[child_q, child_pos] = True
            seen[child_q, reverse[child_pos]] = True
            round_child_q.append(child_q)
            round_child_node.append(child_node)
            child_q_log.append(child_q)

        if not round_child_q:
            break
        if len(round_child_q) == 1:
            cur_q, cur_node = round_child_q[0], round_child_node[0]
        else:
            cur_q = np.concatenate(round_child_q)
            cur_node = np.concatenate(round_child_node)
        hop += 1

    # Scatter the flat visit log back into per-query (hop, node) lists; the
    # stable sort preserves processing order within each query.
    all_q = np.concatenate(visit_queries)
    all_node = np.concatenate(visit_nodes)
    all_hop = np.repeat(
        np.arange(len(hop_sizes), dtype=np.int64),
        np.asarray(hop_sizes, dtype=np.int64),
    )
    order = np.argsort(all_q, kind="stable")
    sorted_q = all_q[order]
    sorted_node = all_node[order]
    sorted_hop = all_hop[order]

    # Local evaluation (Fig. 1 steps 1-2), deferred: forwarding never reads
    # the tracker, so document scoring can run once over the deduplicated
    # visit log instead of once per hop.  Each (query, node) pair is scored
    # at its first visit — re-visits are no-ops in the scalar engine too
    # (the tracker keeps one entry per doc id and ``discovered_at`` keeps
    # the first hop) — and offers replay in exact per-query visit order.
    store_visits = np.flatnonzero(has_store[sorted_node])
    if store_visits.size:
        key = sorted_q[store_visits] * n_nodes + sorted_node[store_visits]
        _, first = np.unique(key, return_index=True)
        first.sort()
        node_hits: dict[int, list[tuple[Hashable, float]]] = {}
        for i in store_visits[first].tolist():
            q = int(sorted_q[i])
            node = int(sorted_node[i])
            if shared_embedding:
                hits = node_hits.get(node)
                if hits is None:
                    hits = node_hits[node] = stores[node].top_k(
                        embeddings[0], config.k
                    )
            else:
                hits = stores[node].top_k(embeddings[q], config.k)
            result = results[q]
            for doc_id, score in hits:
                result.tracker.offer(doc_id, score, node)
                result.discovered_at.setdefault(doc_id, int(sorted_hop[i]))

    counts = np.bincount(all_q, minlength=batch)
    messages = (
        np.bincount(np.concatenate(child_q_log), minlength=batch)
        if child_q_log
        else np.zeros(batch, dtype=np.int64)
    )
    sorted_hops = sorted_hop.tolist()
    sorted_nodes = sorted_node.tolist()
    position = 0
    for q in range(batch):
        end = position + int(counts[q])
        results[q].visits = list(
            zip(sorted_hops[position:end], sorted_nodes[position:end])
        )
        results[q].messages = int(messages[q])
        position = end
    return results
