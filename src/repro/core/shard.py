"""Sharded parallel precompute: community-partitioned diffusion with exact
boundary correction.

The sparse-first pipeline (``method="sparse"``) made the PPR warm-up of
Fig. 2 memory-feasible at 100k+ nodes, but it still runs in one process.
This module partitions the overlay into shards, diffuses each shard's slice
independently (optionally across a :mod:`multiprocessing` pool), and makes
the per-shard results *exact* by exchanging push residuals over the
cross-shard edges between rounds — scaling the precompute to 10⁶-node
overlays (see ``benchmarks/test_bench_sharded_scale.py``).

The math — operator splitting on the push invariant
---------------------------------------------------
Write the globally normalized operator as ``W = D + C`` where ``D`` keeps
the entries whose row *and* column fall in the same shard (a block-diagonal
operator under the shard relabeling) and ``C`` holds the cross-shard
entries.  With ``H_X = α (I − (1−α) X)⁻¹`` the resolvent identity

    ``H_W r = H_D r + H_W · ((1−α)/α) · C · (H_D r)``

turns the global diffusion into a fixed-point loop over *residual rounds*:

* each shard diffuses its rows of the current residual ``r_t`` through its
  **slice of the global operator** ``D`` — an embarrassingly parallel step,
  any inner backend's :meth:`~repro.core.backends.base.DiffusionBackend
  .diffuse_operator` works unchanged;
* the partial estimates ``p_t = H_D r_t`` accumulate into the answer;
* the *exact* leftover ``r_{t+1} = ((1−α)/α) · C · p_t`` is scattered along
  the cross-shard edges into the other shards' mailboxes for the next
  round.

Under the column-stochastic normalization the exchanged ℓ₁ mass contracts
by at least ``(1−α)`` per round (every unit of mass entering a shard either
teleports into the estimate with probability ``α`` per step or keeps
walking, and only the walked share can re-cross a boundary), so the loop
converges geometrically no matter how the graph is cut — the partition
quality only moves the *constant*: fewer cross-shard edges (see
:func:`repro.graphs.communities.community_partition`) means less residual
mass re-crossing per round and smaller mailboxes.  For ``row``/
``symmetric`` normalizations no such mass argument holds, so the driver
carries a divergence guard (two consecutive rounds of growing residual
mass abort with ``converged=False``).

Crucially the shard operators are **slices of the globally normalized
operator**, not re-normalized induced subgraphs: a boundary node keeps its
global degree in the denominators, so the mass it leaks to out-of-shard
neighbors is exactly what the ``C``-term re-injects — the two backends
agree bit-for-bit at ε = 0 about what a shard keeps and what it exports.

Execution
---------
:class:`SerialShardExecutor` runs shard tasks in-process in shard-id order
(debugging, equivalence tests); :class:`PoolShardExecutor` fans them out to
a forked worker pool.  Both execute the *same* task function with the same
deterministic per-shard seeds (:func:`repro.utils.rng.shard_rng`) and merge
results in shard-id order, so the two executors — and repeated runs — are
bit-identical.  The pool is *self-healing*: a worker killed or wedged
mid-round is detected by the ``task_timeout``, the round is resubmitted on
a fresh pool (pure tasks ⇒ identical results), and a pool that keeps
failing degrades to the serial executor with a warning instead of aborting
the precompute.  Pool workers run under ``tracemalloc`` when a benchmark
harness requests it (:mod:`repro.utils.procmem`) and ship their traced
peaks back with each task result, so ``measure_peak_memory`` can report the
fleet-wide ``parent + max(child)`` footprint.
"""

from __future__ import annotations

import multiprocessing
import time
import tracemalloc
import warnings
from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import DiffusionBackend
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.communities import (
    community_partition,
    cross_shard_fraction,
    degree_balanced_partition,
)
from repro.gsp.filters import (
    PrunedMassWarning,
    check_pruned_mass,
    coerce_sparse_signal,
)
from repro.gsp.normalization import NormalizationKind, transition_matrix
from repro.utils import check_positive, ensure_rng, shard_rng
from repro.utils import procmem
from repro.utils.rng import RngLike

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "Shard",
    "ShardPlan",
    "ShardTaskResult",
    "ShardedRunReport",
    "SerialShardExecutor",
    "PoolShardExecutor",
    "build_shard_plan",
    "make_worker_state",
    "sharded_diffuse",
]

#: Residual-round cap of :func:`sharded_diffuse`.  With the column
#: normalization the residual contracts by ``(1−α)`` per round, so even the
#: paper's heaviest diffusion (α = 0.1) reaches 1e-9 within ~200 rounds;
#: the cap is a backstop for the un-guaranteed normalizations.
DEFAULT_MAX_ROUNDS = 500


@dataclass(frozen=True)
class Shard:
    """One shard's static slice of the global diffusion problem.

    ``local_operator`` is the ``(k, k)`` intra-shard block of the *global*
    normalized operator with rows/columns relabeled to local ids (sorted
    global order); ``cross_operator`` is the ``(n, k)`` cross-shard slice —
    global rows, local columns — through which the shard's diffused mass
    leaks into other shards' mailboxes.
    """

    shard_id: int
    nodes: np.ndarray
    local_operator: sp.csr_matrix
    cross_operator: sp.csr_matrix


@dataclass(frozen=True)
class ShardPlan:
    """A reusable partition of the overlay for sharded diffusion.

    Built once per ``(n_shards, partition, normalization, seed)`` by
    :func:`build_shard_plan` (memoized on the adjacency, like the operator
    cache) and shared by every subsequent diffuse/refresh — plan
    construction is the only part that touches the full operator.
    """

    assignment: np.ndarray
    shards: tuple[Shard, ...]
    n_nodes: int
    normalization: NormalizationKind
    partition: str
    partition_seed: int
    cross_fraction: float

    @property
    def n_shards(self) -> int:
        return len(self.shards)


@dataclass(frozen=True)
class ShardTaskResult:
    """One shard's output for one residual round.

    ``estimate`` is the local ``(k, dim)`` diffusion of the shard's residual
    block; ``outgoing`` the ``(n, dim)`` residual it exports to other shards
    (``((1−α)/α) · C_s @ estimate``).  ``peak_bytes`` is the worker
    process's traced allocation peak (0 outside memory measurement and for
    the serial executor, whose allocations the parent's own tracemalloc
    already sees).
    """

    shard_id: int
    estimate: sp.csr_matrix
    outgoing: sp.csr_matrix
    inner_iterations: int
    seconds: float
    peak_bytes: int = 0


@dataclass(frozen=True)
class ShardedRunReport:
    """Diagnostics of one :func:`sharded_diffuse` run.

    ``shard_seconds`` holds each round's per-task compute times as measured
    *inside* the workers; ``critical_path_seconds`` (Σ over rounds of the
    slowest shard) is the run's wall-clock lower bound with ≥ ``n_shards``
    cores, while ``serial_seconds`` (Σ of everything) is the one-worker
    cost — their ratio is the speedup the partition makes available,
    independent of how many cores the measuring host happens to have.
    """

    rounds: int
    residual: float
    converged: bool
    inner_iterations: int
    shard_seconds: tuple[tuple[float, ...], ...]
    critical_path_seconds: float
    serial_seconds: float
    diffused_mass_ratio: float | None = None


def build_shard_plan(
    topology: CompressedAdjacency,
    n_shards: int,
    *,
    partition: str = "community",
    normalization: NormalizationKind = "column",
    partition_seed: int = 0,
    assignment: np.ndarray | None = None,
) -> ShardPlan:
    """Partition the overlay and slice the global operator per shard.

    ``partition`` selects the node-to-shard map: ``"community"``
    (:func:`~repro.graphs.communities.community_partition`, the default —
    minimizes the cross-shard residual traffic on community-structured
    overlays) or ``"degree"``
    (:func:`~repro.graphs.communities.degree_balanced_partition`, the
    structure-free fallback).  A precomputed ``assignment`` array overrides
    both.  Plans are memoized on the adjacency object per
    ``(n_shards, partition, normalization, partition_seed)`` — sound
    because the adjacency is immutable — except when an explicit
    ``assignment`` is supplied.
    """
    check_positive(n_shards, "n_shards")
    n = topology.n_nodes
    if n_shards > max(1, n):
        raise ValueError(
            f"n_shards ({n_shards}) must not exceed n_nodes ({n})"
        )
    cache_key = None
    if assignment is None:
        cache = getattr(topology, "_shard_plan_cache", None)
        if cache is None:
            cache = {}
            try:
                topology._shard_plan_cache = cache
            except AttributeError:  # pragma: no cover - exotic subclasses
                cache = None
        cache_key = (n_shards, partition, normalization, int(partition_seed))
        if cache is not None:
            cached = cache.get(cache_key)
            if cached is not None:
                return cached
        if partition == "community":
            assignment = community_partition(
                topology, n_shards, seed=int(partition_seed)
            )
        elif partition == "degree":
            assignment = degree_balanced_partition(topology, n_shards)
        else:
            raise ValueError(
                f"partition must be 'community' or 'degree', got {partition!r}"
            )
    else:
        partition = "explicit"
        cache = None
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (n,):
            raise ValueError(
                f"assignment must have shape ({n},), got {assignment.shape}"
            )
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= n_shards
        ):
            raise ValueError(
                f"assignment values must lie in [0, {n_shards})"
            )

    operator = transition_matrix(topology, normalization, fmt="csc")
    shards = []
    for shard_id in range(n_shards):
        nodes = np.flatnonzero(assignment == shard_id).astype(np.int64)
        shards.append(_slice_shard(operator, assignment, nodes, shard_id))
    plan = ShardPlan(
        assignment=assignment,
        shards=tuple(shards),
        n_nodes=n,
        normalization=normalization,
        partition=partition,
        partition_seed=int(partition_seed),
        cross_fraction=cross_shard_fraction(topology, assignment),
    )
    if cache is not None and cache_key is not None:
        cache[cache_key] = plan
    return plan


def _slice_shard(
    operator: sp.csc_matrix,
    assignment: np.ndarray,
    nodes: np.ndarray,
    shard_id: int,
) -> Shard:
    """Split the shard's operator columns into intra and cross slices.

    Column ``v`` of the global operator is node ``v``'s outgoing mass
    distribution; slicing columns (cheap on CSC) and splitting the entries
    by the *row*'s shard keeps every global degree in the denominators —
    the correctness requirement spelled out in the module docstring.
    """
    n = operator.shape[0]
    k = nodes.shape[0]
    columns = operator[:, nodes].tocsc()
    rows = columns.indices
    entry_col = np.repeat(
        np.arange(k, dtype=np.int64), np.diff(columns.indptr)
    )
    intra = assignment[rows] == shard_id
    local_row = np.full(n, -1, dtype=np.int64)
    local_row[nodes] = np.arange(k, dtype=np.int64)
    local_operator = sp.csr_matrix(
        (
            columns.data[intra],
            (local_row[rows[intra]], entry_col[intra]),
        ),
        shape=(k, k),
    )
    cross_operator = sp.csr_matrix(
        (columns.data[~intra], (rows[~intra], entry_col[~intra])),
        shape=(n, k),
    )
    return Shard(
        shard_id=shard_id,
        nodes=nodes,
        local_operator=local_operator,
        cross_operator=cross_operator,
    )


# --------------------------------------------------------------- executors


@dataclass(frozen=True)
class _WorkerState:
    """Everything a shard task needs besides its per-round residual block.

    Built once per executor; under the ``fork`` start method the pool
    inherits it copy-on-write (the shard operators are never pickled — only
    the small per-round residual blocks travel through the task queue).
    """

    shards: tuple[Shard, ...]
    inner: DiffusionBackend
    alpha: float
    tol: float
    max_iterations: int
    seed: int | None
    trace_memory: bool


def _execute_shard(
    state: _WorkerState, shard_id: int, residual_block: sp.csr_matrix
) -> ShardTaskResult:
    """Diffuse one shard's residual block and compute its exports.

    The inner filter's per-block :class:`PrunedMassWarning` is suppressed:
    a late-round residual fragment is *supposed* to be tiny relative to its
    teleport share, so the per-block guard would fire spuriously —
    :func:`sharded_diffuse` re-checks the guard once on the aggregated
    global estimate instead.
    """
    start = time.perf_counter()
    shard = state.shards[shard_id]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PrunedMassWarning)
        outcome = state.inner.diffuse_operator(
            shard.local_operator,
            residual_block,
            alpha=state.alpha,
            tol=state.tol,
            max_iterations=state.max_iterations,
            seed=(
                None
                if state.seed is None
                else shard_rng(state.seed, shard_id)
            ),
        )
    estimate = outcome.embeddings
    if not sp.issparse(estimate):
        estimate = sp.csr_matrix(np.atleast_2d(estimate))
    estimate = estimate.tocsr()
    outgoing = (shard.cross_operator @ estimate).tocsr()
    outgoing *= (1.0 - state.alpha) / state.alpha
    return ShardTaskResult(
        shard_id=shard_id,
        estimate=estimate,
        outgoing=outgoing,
        inner_iterations=outcome.iterations,
        seconds=time.perf_counter() - start,
    )


#: Per-process executor state of a forked pool worker (set by `_pool_init`).
_WORKER_STATE: _WorkerState | None = None


def _pool_init(state: _WorkerState) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state
    if state.trace_memory and not tracemalloc.is_tracing():
        tracemalloc.start()


def _pool_task(task: tuple[int, sp.csr_matrix]) -> ShardTaskResult:
    shard_id, residual_block = task
    assert _WORKER_STATE is not None, "pool worker used before _pool_init"
    result = _execute_shard(_WORKER_STATE, shard_id, residual_block)
    if _WORKER_STATE.trace_memory and tracemalloc.is_tracing():
        # The worker's cumulative peak so far; the parent keeps the max
        # over tasks, which converges to the worker's true peak.
        result = replace(
            result, peak_bytes=int(tracemalloc.get_traced_memory()[1])
        )
    return result


class SerialShardExecutor:
    """Run shard tasks in the calling process, in submission order.

    The debugging and equivalence baseline: it executes the exact task
    function the pool workers run, with the same per-shard seeds, so
    :class:`PoolShardExecutor` output can be asserted bit-identical against
    it.  ``peak_bytes`` stays 0 — the parent's own ``tracemalloc`` already
    sees serial allocations, so reporting them as child peaks would
    double-count.
    """

    def __init__(self, state: _WorkerState) -> None:
        self._state = replace(state, trace_memory=False)

    def run_round(
        self, tasks: list[tuple[int, sp.csr_matrix]]
    ) -> list[ShardTaskResult]:
        return [
            _execute_shard(self._state, shard_id, block)
            for shard_id, block in tasks
        ]

    def close(self) -> None:
        pass


class PoolShardExecutor:
    """Fan shard tasks out to a persistent, self-healing forked worker pool.

    The pool is created with the ``fork`` start method so the shard plan —
    the heavy, static part — reaches workers by copy-on-write inheritance
    through the initializer instead of pickling; only per-round residual
    blocks (small, shrinking geometrically) cross the task queue.
    ``pool.map_async`` preserves task order, so merge order — and therefore
    the result — is identical to :class:`SerialShardExecutor`.

    Self-healing: with a ``task_timeout`` (seconds) set, a round that does
    not complete in time — the signature of a killed or wedged worker; raw
    ``multiprocessing.Pool`` silently loses the in-flight task and blocks
    forever — or that raises from a worker is retried on a freshly forked
    pool, up to ``max_retries`` times.  Shard tasks are pure functions of
    ``(state, shard_id, residual_block)``, so a retried round is
    bit-identical to an undisturbed one.  When the retry budget is
    exhausted the executor downgrades itself to a
    :class:`SerialShardExecutor` for the rest of the run with a
    ``UserWarning`` — the precompute finishes slower instead of crashing.
    The default ``task_timeout=None`` preserves the original wait-forever
    behavior for fault-free deployments.

    Platforms without ``fork`` (Windows; macOS under the default ``spawn``
    method) get a :class:`SerialShardExecutor` back from the constructor
    with a ``UserWarning`` instead of a hard error, so
    ``ShardedDiffusionBackend(..., workers=N)`` runs everywhere.
    """

    def __new__(
        cls,
        state: _WorkerState,
        workers: int,
        *,
        task_timeout: float | None = None,
        max_retries: int = 2,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "shard operators cannot be shared copy-on-write — "
                "degrading to SerialShardExecutor (single-process)",
                UserWarning,
                stacklevel=2,
            )
            return SerialShardExecutor(state)
        return super().__new__(cls)

    def __init__(
        self,
        state: _WorkerState,
        workers: int,
        *,
        task_timeout: float | None = None,
        max_retries: int = 2,
    ) -> None:
        check_positive(workers, "workers")
        if task_timeout is not None:
            check_positive(task_timeout, "task_timeout")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._state = state
        self.workers = int(workers)
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        #: Rounds that had to be resubmitted after a pool failure.
        self.retried_rounds = 0
        self._serial_fallback: SerialShardExecutor | None = None
        self._pool = self._spawn_pool()

    def _spawn_pool(self):
        return multiprocessing.get_context("fork").Pool(
            self.workers, initializer=_pool_init, initargs=(self._state,)
        )

    def run_round(
        self, tasks: list[tuple[int, sp.csr_matrix]]
    ) -> list[ShardTaskResult]:
        if self._serial_fallback is not None:
            return self._serial_fallback.run_round(tasks)
        attempts = 0
        while True:
            try:
                results = self._pool.map_async(_pool_task, tasks).get(
                    self.task_timeout
                )
                break
            except Exception as exc:  # timeout (lost worker) or task error
                attempts += 1
                self.retried_rounds += 1
                # terminate(), not close(): the wedged round's tasks must
                # not keep a dead pool's queues alive.
                self._pool.terminate()
                self._pool.join()
                if attempts <= self.max_retries:
                    self._pool = self._spawn_pool()
                    continue
                warnings.warn(
                    f"shard pool failed {attempts} consecutive times "
                    f"(last error: {exc!r}); falling back to "
                    "SerialShardExecutor for the rest of this run",
                    UserWarning,
                    stacklevel=2,
                )
                self._serial_fallback = SerialShardExecutor(self._state)
                return self._serial_fallback.run_round(tasks)
        if self._state.trace_memory:
            for result in results:
                if result.peak_bytes:
                    procmem.record_child_peak(result.peak_bytes)
        return results

    def close(self) -> None:
        if self._serial_fallback is not None:
            return
        self._pool.close()
        self._pool.join()


def make_worker_state(
    plan: ShardPlan,
    inner: DiffusionBackend,
    *,
    alpha: float,
    tol: float,
    max_iterations: int,
    seed: RngLike = None,
) -> _WorkerState:
    """Freeze the static per-run state executors hand to shard tasks.

    A non-integer ``seed`` (a live ``Generator``) is collapsed to one draw
    here, in the parent, so every worker derives its shard stream from the
    same base regardless of scheduling (see :func:`repro.utils.rng.shard_rng`).
    """
    if seed is None:
        base_seed = None
    elif isinstance(seed, (int, np.integer)):
        base_seed = int(seed)
    else:
        base_seed = int(ensure_rng(seed).integers(0, 2**63 - 1))
    return _WorkerState(
        shards=plan.shards,
        inner=inner,
        alpha=float(alpha),
        tol=float(tol),
        max_iterations=int(max_iterations),
        seed=base_seed,
        trace_memory=procmem.worker_tracing_enabled(),
    )


# ------------------------------------------------------------- the driver


def _scatter_rows(
    local: sp.csr_matrix, nodes: np.ndarray, n: int
) -> sp.csr_matrix:
    """Re-index a shard-local ``(k, dim)`` CSR block to global ``(n, dim)``.

    ``nodes`` is sorted, so local row order equals global row order and the
    data/index arrays carry over unchanged — only ``indptr`` is rebuilt.
    """
    counts = np.zeros(n, dtype=np.int64)
    counts[nodes] = np.diff(local.indptr)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return sp.csr_matrix(
        (local.data, local.indices, indptr), shape=(n, local.shape[1])
    )


def sharded_diffuse(
    plan: ShardPlan,
    personalization: np.ndarray | sp.spmatrix,
    inner: DiffusionBackend,
    *,
    alpha: float,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: RngLike = None,
    executor: SerialShardExecutor | PoolShardExecutor | None = None,
    workers: int | None = None,
    warn_pruned_mass: bool = True,
) -> tuple[sp.csr_matrix, ShardedRunReport]:
    """Run the residual-mailbox loop of the module docstring to convergence.

    Each round slices the current residual by shard, diffuses every
    non-empty block through ``inner.diffuse_operator`` on its shard's local
    operator (via ``executor`` — a fresh :class:`SerialShardExecutor` when
    none is given and ``workers`` is ``None``, else a pool of ``workers``),
    accumulates the partial estimates, and folds the exported residuals —
    in shard-id order, for determinism — into the next round's mailbox.
    Stops when the residual's largest entry falls below ``tol`` (matching
    the other backends' residual semantics), at ``max_rounds``, or when the
    divergence guard trips (residual ℓ₁ mass growing two rounds in a row —
    possible for non-column normalizations, whose splitting iteration has
    no contraction guarantee).

    Returns the global CSR estimate and a :class:`ShardedRunReport`; when
    the inner backend prunes (an ``epsilon`` attribute > 0) the aggregated
    estimate is re-checked with :func:`repro.gsp.filters.check_pruned_mass`
    (per-shard warnings are suppressed — see :func:`_execute_shard`).
    """
    check_positive(max_rounds, "max_rounds")
    n = plan.n_nodes
    # Accumulators follow the inner backend's precision (float32 inners keep
    # the whole mailbox loop in single precision).
    dtype = np.dtype(getattr(inner, "dtype", np.float64))
    residual, _ = coerce_sparse_signal(personalization, n, dtype)
    dim = residual.shape[1]
    e0_l1 = float(np.abs(residual.data).sum())
    estimate = sp.csr_matrix((n, dim), dtype=dtype)

    owns_executor = executor is None
    if owns_executor:
        state = make_worker_state(
            plan,
            inner,
            alpha=alpha,
            tol=tol,
            max_iterations=max_iterations,
            seed=seed,
        )
        executor = (
            SerialShardExecutor(state)
            if workers is None or workers <= 1
            else PoolShardExecutor(state, workers)
        )

    rounds = 0
    inner_iterations = 0
    round_seconds: list[tuple[float, ...]] = []
    residual_norm = (
        float(np.max(np.abs(residual.data))) if residual.nnz else 0.0
    )
    converged = residual_norm <= tol
    mass_history: list[float] = []
    try:
        while not converged and rounds < max_rounds:
            rounds += 1
            tasks = []
            for shard in plan.shards:
                block = residual[shard.nodes]
                if block.nnz:
                    tasks.append((shard.shard_id, block.tocsr()))
            results = executor.run_round(tasks)
            round_seconds.append(tuple(r.seconds for r in results))
            next_residual = sp.csr_matrix((n, dim), dtype=dtype)
            for result in results:  # shard-id order: deterministic merge
                inner_iterations += result.inner_iterations
                estimate = estimate + _scatter_rows(
                    result.estimate, plan.shards[result.shard_id].nodes, n
                )
                next_residual = next_residual + result.outgoing
            residual = next_residual
            residual_norm = (
                float(np.max(np.abs(residual.data))) if residual.nnz else 0.0
            )
            converged = residual_norm <= tol
            mass_history.append(
                float(np.abs(residual.data).sum()) if residual.nnz else 0.0
            )
            if (
                len(mass_history) >= 3
                and mass_history[-1] > mass_history[-2] > mass_history[-3]
            ):
                break  # diverging: residual mass grew two rounds in a row
    finally:
        if owns_executor:
            executor.close()

    mass_ratio = None
    if float(getattr(inner, "epsilon", 0.0)) > 0.0:
        mass_ratio = check_pruned_mass(
            e0_l1,
            float(np.abs(estimate.data).sum()),
            alpha,
            float(inner.epsilon),
            warn=warn_pruned_mass,
        )
    report = ShardedRunReport(
        rounds=rounds,
        residual=residual_norm,
        converged=converged,
        inner_iterations=inner_iterations,
        shard_seconds=tuple(round_seconds),
        critical_path_seconds=float(
            sum(max(times, default=0.0) for times in round_seconds)
        ),
        serial_seconds=float(sum(sum(times) for times in round_seconds)),
        diffused_mass_ratio=mass_ratio,
    )
    return estimate, report
