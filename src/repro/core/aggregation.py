"""Multi-channel personalization: the paper's future-work aggregation.

The paper attributes its accuracy collapse at high document counts to "the
loss of information for individual documents when many embeddings are
summed" and names "more sophisticated aggregation methods that encode more
information about the grouped documents" as its research direction (§VI).

This module implements one such method that stays fully decentralized:
**sketch-partitioned personalization**.  All nodes share a public random
projection (a seed suffices — no coordination).  Each node hashes every
local document to one of ``C = 2^n_bits`` channels by the sign pattern of
the projection, and maintains one personalization vector *per channel*
(the sum of that channel's document embeddings).  The diffusion runs
independently per channel — it is still the linear PPR filter, so the
decentralized protocol of §IV-B applies unchanged, at C× the bandwidth.

At query time a node scores a neighbor by the **maximum channel score**
rather than the total.  Since random-hyperplane buckets group directionally
similar documents, each channel sums fewer, more-aligned embeddings: the
gold document's channel is polluted by less cross-topic noise, which is
exactly the failure mode the flat sum suffers at M = 10,000.
"""

from __future__ import annotations

import numpy as np

from repro.core.forwarding import ForwardingPolicy
from repro.retrieval.scoring import top_k_indices
from repro.utils import check_non_negative, check_positive, ensure_rng
from repro.utils.rng import RngLike


class ChannelHasher:
    """Public random-hyperplane hash mapping embeddings to channels.

    Every node constructs the identical hasher from the shared ``seed``, so
    the partition is globally consistent without any coordination protocol.
    ``n_bits = 0`` degenerates to a single channel — the paper's flat sum.
    """

    def __init__(self, dim: int, n_bits: int, *, seed: RngLike = 0) -> None:
        check_positive(dim, "dim")
        check_non_negative(n_bits, "n_bits")
        if n_bits > 16:
            raise ValueError(f"n_bits must be <= 16 (got {n_bits})")
        self.dim = int(dim)
        self.n_bits = int(n_bits)
        rng = ensure_rng(seed)
        self._planes = rng.standard_normal((self.n_bits, self.dim))
        self._powers = (2 ** np.arange(self.n_bits)).astype(np.int64)

    @property
    def n_channels(self) -> int:
        return 1 << self.n_bits

    def channel_of(self, vectors: np.ndarray) -> np.ndarray:
        """Channel index of each row vector (vector input → scalar array)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        single = vectors.ndim == 1
        if single:
            vectors = vectors[None, :]
        if self.n_bits == 0:
            out = np.zeros(vectors.shape[0], dtype=np.int64)
        else:
            bits = (vectors @ self._planes.T) > 0
            out = bits.astype(np.int64) @ self._powers
        return out[0] if single else out


def channel_personalization(
    doc_embeddings: np.ndarray,
    doc_nodes: np.ndarray,
    n_nodes: int,
    hasher: ChannelHasher,
) -> np.ndarray:
    """Per-channel personalization tensor of shape ``(C, n_nodes, dim)``.

    Channel ``c`` of node ``u`` is the sum of u's documents hashing to ``c``
    — the §IV-A sum restricted to one bucket.  Summing over channels
    recovers the paper's flat personalization exactly.
    """
    doc_embeddings = np.asarray(doc_embeddings, dtype=np.float64)
    doc_nodes = np.asarray(doc_nodes, dtype=np.int64)
    if doc_embeddings.shape[0] != doc_nodes.shape[0]:
        raise ValueError("doc_embeddings and doc_nodes must be aligned")
    channels = hasher.channel_of(doc_embeddings)
    tensor = np.zeros(
        (hasher.n_channels, n_nodes, doc_embeddings.shape[1]), dtype=np.float64
    )
    for channel in range(hasher.n_channels):
        mask = channels == channel
        if mask.any():
            np.add.at(tensor[channel], doc_nodes[mask], doc_embeddings[mask])
    return tensor


def channel_relevance_signals(
    doc_embeddings: np.ndarray,
    doc_nodes: np.ndarray,
    n_nodes: int,
    query_embedding: np.ndarray,
    hasher: ChannelHasher,
) -> np.ndarray:
    """Scalar per-channel signals ``x0[c, u] = e0_u^{(c)} · e_q``.

    The linearity fast path of the experiment harness, one channel at a
    time: diffusing these C scalar signals gives exactly the per-channel
    scores that diffusing the full ``(C, n, dim)`` tensor would.
    """
    doc_embeddings = np.asarray(doc_embeddings, dtype=np.float64)
    doc_nodes = np.asarray(doc_nodes, dtype=np.int64)
    channels = hasher.channel_of(doc_embeddings)
    doc_scores = doc_embeddings @ np.asarray(query_embedding, dtype=np.float64)
    signals = np.zeros((hasher.n_channels, n_nodes), dtype=np.float64)
    for channel in range(hasher.n_channels):
        mask = channels == channel
        if mask.any():
            signals[channel] = np.bincount(
                doc_nodes[mask], weights=doc_scores[mask], minlength=n_nodes
            )
    return signals


class MaxChannelPolicy(ForwardingPolicy):
    """Forward toward the highest *maximum-channel* diffused relevance.

    ``channel_scores`` has shape ``(C, n_nodes)``: the C independently
    diffused scalar relevance signals.  A candidate's score is its best
    channel — the aggregation that keeps the gold document's signal from
    being averaged away by unrelated local content.
    """

    def __init__(self, channel_scores: np.ndarray) -> None:
        channel_scores = np.asarray(channel_scores, dtype=np.float64)
        if channel_scores.ndim != 2:
            raise ValueError(
                f"channel_scores must be 2-D (C, n_nodes), got {channel_scores.shape}"
            )
        self.channel_scores = channel_scores
        self.node_scores = channel_scores.max(axis=0)

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        return candidates[top_k_indices(self.node_scores[candidates], fanout)]

    def describe(self) -> str:
        return f"max-channel(C={self.channel_scores.shape[0]})"
