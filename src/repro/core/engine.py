"""The walk engine: TTL-bounded query forwarding (paper §IV-C, Fig. 1).

This is the synchronous fast path used by the experiment sweeps.  It executes
*exactly* the per-node protocol of Fig. 1 — evaluate locally, decrement TTL,
pick unvisited neighbors by embedding score, fall back to all neighbors when
every neighbor was already involved (footnote 9) — while keeping all state in
plain dictionaries instead of scheduling messages.  An integration test pins
its walks to the event-driven :class:`repro.core.protocol.QueryRoutingNode`
execution step for step, so the fast path is an accelerator, not a variant.

Privacy note (paper §IV-C): visited state is the per-(query, node) memory of
which neighbors a node received from / forwarded to — the query message never
carries the visited set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

import numpy as np

from repro.core.forwarding import ForwardingPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.topk import ScoredDocument, TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.utils import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
    ensure_rng,
)
from repro.utils.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.faults import FaultInjector


@dataclass(frozen=True)
class WalkConfig:
    """Query execution parameters.

    Attributes
    ----------
    ttl:
        Time-to-live: the query message is forwarded while its decremented
        TTL stays positive, so at most ``ttl`` nodes evaluate it (the source
        at hop 0 through hop ``ttl − 1``).  The paper uses 50.
    fanout:
        Number of next hops selected at the source; 1 reproduces the paper's
        single biased random walk, larger values run parallel walks.
    k:
        Size of the query's running top-k result tracker (paper evaluates
        top-1).
    """

    ttl: int = 50
    fanout: int = 1
    k: int = 1

    def __post_init__(self) -> None:
        check_positive(self.ttl, "ttl")
        check_positive(self.fanout, "fanout")
        check_positive(self.k, "k")


@dataclass(frozen=True)
class ResilienceConfig:
    """Failure-handling knobs of the resilient walk (used with ``faults``).

    Attributes
    ----------
    max_retries:
        Per-hop budget of *failed* forwarding attempts (detected-dead
        reroutes plus dropped-message retries) before the walker gives up.
    retry_backoff:
        TTL units a walker burns per failed attempt — the synchronous
        engine's model of a detection timeout plus backoff wait.  Retry
        overhead therefore shows up in the walk budget, where the
        fault-tolerance benchmark measures it.
    redundancy:
        Number of walkers launched at the query source (k-redundant
        walking).  Walkers share the per-(query, node) visited memory, so
        redundancy widens coverage instead of duplicating it, and their
        results merge in the query's single top-k tracker.
    """

    max_retries: int = 2
    retry_backoff: int = 1
    redundancy: int = 1

    def __post_init__(self) -> None:
        # Validated as *integers* at construction: a negative or fractional
        # count would otherwise only surface deep in the walk loop (e.g. as
        # a float fanout corrupting the frontier) long after the config was
        # built.
        check_non_negative_int(self.max_retries, "max_retries")
        check_non_negative_int(self.retry_backoff, "retry_backoff")
        check_positive_int(self.redundancy, "redundancy")


@dataclass
class SearchResult:
    """Outcome of one query execution."""

    query_id: Hashable
    start_node: int
    tracker: TopKTracker
    visits: list[tuple[int, int]]  # (hop index, node id) in processing order
    discovered_at: dict[Hashable, int] = field(default_factory=dict)
    messages: int = 0
    #: Fault-injection outcome (all zero / False on a fault-free run):
    #: ``degraded`` means at least one walker died of failures (or the
    #: source itself was down) and the results are best-so-far partials.
    degraded: bool = False
    retries: int = 0  # dropped-message resends
    rerouted: int = 0  # detected-dead-peer reroutes
    walkers_lost: int = 0  # walkers that died with TTL remaining
    zombie_visits: int = 0  # visits whose local evaluation was stale/useless
    #: Deadline outcome: True when a ``hop_budget`` cap cut the walk short of
    #: its configured TTL (the serving layer's mid-walk timeout).  Implies
    #: ``degraded`` — the results are best-so-far partials.
    deadline_hit: bool = False
    #: Per-peer failure observations from the resilient walk: peer id →
    #: failed forwarding attempts charged to it (detected-dead reroutes plus
    #: dropped-message retries).  Circuit breakers aggregate these across
    #: queries to quarantine flapping peers.
    failed_peers: dict[int, int] = field(default_factory=dict)

    @property
    def results(self) -> list[ScoredDocument]:
        """Final top-k documents, best first."""
        return self.tracker.items()

    @property
    def best(self) -> ScoredDocument | None:
        """The single best document found (None when nothing was found)."""
        return self.tracker.best()

    @property
    def path(self) -> list[int]:
        """Visited node ids in processing order (source first)."""
        return [node for _, node in self.visits]

    @property
    def unique_nodes_visited(self) -> int:
        return len({node for _, node in self.visits})

    @property
    def hops_used(self) -> int:
        """Largest hop index reached by any walker."""
        return max((hop for hop, _ in self.visits), default=0)

    def found(self, doc_id: Hashable, *, top: int | None = None) -> bool:
        """Did the query retrieve ``doc_id`` (within the best ``top`` results)?

        With ``top=None`` membership in the final tracker suffices; the
        paper's top-1 criterion is ``found(gold, top=1)``.
        """
        ids = self.tracker.doc_ids()
        if top is not None:
            ids = ids[:top]
        return doc_id in ids

    def hops_to(self, doc_id: Hashable) -> int | None:
        """Hop index at which ``doc_id`` was first encountered (None if never)."""
        return self.discovered_at.get(doc_id)


class _FrozenEmptyStore(DocumentStore):
    """Immutable empty store shared across queries of the same ``dim``.

    Nodes without documents are scored against this sentinel; freezing the
    mutators guarantees the shared instance can never accumulate documents
    and leak them into unrelated queries or networks.
    """

    def add(self, doc_id: Hashable, embedding: np.ndarray) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")

    def add_many(self, documents) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")

    def remove(self, doc_id: Hashable) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")


_EMPTY_STORE_SENTINELS: dict[int, _FrozenEmptyStore] = {}


def _empty_store(dim: int) -> DocumentStore:
    store = _EMPTY_STORE_SENTINELS.get(dim)
    if store is None:
        store = _EMPTY_STORE_SENTINELS[dim] = _FrozenEmptyStore(dim)
    return store


def run_query(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    policy: ForwardingPolicy,
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    query_id: Hashable = None,
    seed: RngLike = None,
    faults: "FaultInjector | None" = None,
    resilience: ResilienceConfig | None = None,
    hop_budget: int | None = None,
    quarantine: "Iterable[int] | None" = None,
) -> SearchResult:
    """Execute one query from ``start_node`` per the Fig. 1 protocol.

    Parameters
    ----------
    stores:
        Node id → local :class:`DocumentStore`; nodes without an entry hold
        no documents.
    policy:
        Next-hop selection (the paper's embedding-guided policy or a blind
        baseline).
    seed:
        Drives stochastic policies only; the default embedding-guided policy
        is deterministic.
    faults:
        A :class:`repro.runtime.faults.FaultInjector` to walk through.  With
        ``None`` (the default) the engine runs the exact fault-free protocol
        — bit-identical to the pre-resilience implementation, pinned by
        equivalence tests.  With an injector, forwarding gains failure
        detection: a message to a crashed peer times out and the walker
        reroutes to the next-best-scoring live neighbor; a dropped message
        is retried; each failed attempt burns ``resilience.retry_backoff``
        TTL, and after ``resilience.max_retries`` failures at one hop the
        walker dies.  When every walker dies early the query returns its
        best-so-far partial results with ``result.degraded`` set instead of
        raising.  The hop index serves as the injector's logical clock.
    resilience:
        Retry/backoff/redundancy knobs (defaults: 2 retries, backoff 1,
        redundancy 1).  ``redundancy=k`` launches ``max(fanout, k)`` source
        walkers sharing one visited memory — also honored without faults,
        where it is equivalent to ``fanout=k``.
    hop_budget:
        Per-query deadline budget in hops: the walk's horizon is capped at
        ``min(config.ttl, hop_budget)`` visits per walker chain.  When the
        cap actually bites (``hop_budget < config.ttl`` and a walker
        exhausts it), the query returns its best-so-far partial with
        ``result.degraded`` and ``result.deadline_hit`` set — a timed-out
        query is never a silent drop.  ``None`` (default) leaves the walk
        byte-for-byte identical to the unbudgeted one.  The serving layer
        derives this from ``(deadline − start) / hop_cost``.
    quarantine:
        Peers to route around *before* wasting any TTL on them (a circuit
        breaker's open set).  Quarantined peers are excluded from next-hop
        candidates outright — with faults they pre-populate the per-hop
        unreachable set, so no detection timeout is ever paid for a peer
        already known to flap.  ``None``/empty changes nothing.
    """
    config = config or WalkConfig()
    rng = ensure_rng(seed)
    query_embedding = np.asarray(query_embedding, dtype=np.float64)
    if not 0 <= start_node < adjacency.n_nodes:
        raise ValueError(f"start_node {start_node} out of range")
    effective_ttl = config.ttl
    if hop_budget is not None:
        check_positive_int(hop_budget, "hop_budget")
        effective_ttl = min(effective_ttl, hop_budget)
    capped = effective_ttl < config.ttl
    avoid: set[int] | None = (
        set(int(p) for p in quarantine) if quarantine else None
    )

    dim = query_embedding.shape[0]
    tracker = TopKTracker(config.k)
    result = SearchResult(
        query_id=query_id,
        start_node=int(start_node),
        tracker=tracker,
        visits=[],
    )
    # Per-(query, node) neighbor memory: who this node received from or
    # forwarded to.  Kept engine-side but indexed per node — identical
    # information to the distributed implementation.  Each entry is a boolean
    # mask over the node's (sorted) CSR neighbor row, so the membership test
    # is a single fancy-index instead of a per-hop set→list→``np.isin`` scan.
    memory: dict[int, np.ndarray] = {}

    def visit(node: int, hop: int, *, skip_store: bool = False) -> None:
        result.visits.append((hop, node))
        if skip_store:
            # Zombie peer: it routes, but its local evaluation is stale.
            return
        store = stores.get(node) or _empty_store(dim)
        for doc_id, score in store.top_k(query_embedding, config.k):
            tracker.offer(doc_id, score, node)
            result.discovered_at.setdefault(doc_id, hop)

    def next_hops(
        node: int, fanout: int, exclude: set[int] | None = None
    ) -> np.ndarray:
        neighbors = adjacency.neighbors(node)
        if neighbors.size == 0:
            return neighbors
        seen = memory.get(node)
        candidates = neighbors if seen is None else neighbors[~seen]
        if exclude:
            candidates = candidates[~np.isin(candidates, list(exclude))]
        if candidates.size == 0:
            # Footnote 9: don't waste the remaining TTL — consider everyone.
            candidates = neighbors
            if exclude:
                candidates = candidates[~np.isin(candidates, list(exclude))]
            if candidates.size == 0:
                return candidates
        return policy.select(query_embedding, candidates, fanout, rng)

    def remember(node: int, other: int) -> None:
        """Mark ``other`` in ``node``'s neighbor-row memory mask."""
        neighbors = adjacency.neighbors(node)
        position = int(np.searchsorted(neighbors, other))
        if position >= neighbors.shape[0] or neighbors[position] != other:
            return  # not adjacent: can never be filtered, nothing to record
        seen = memory.get(node)
        if seen is None:
            seen = memory[node] = np.zeros(neighbors.shape[0], dtype=bool)
        seen[position] = True

    # Walker queue processed in hop order: (node, hop, remaining ttl before
    # this node's decrement, fanout for this node's forwarding decision).
    # Redundant walkers are extra source fanout sharing the visited memory.
    source_fanout = config.fanout
    if resilience is not None:
        source_fanout = max(source_fanout, resilience.redundancy)
    frontier: deque[tuple[int, int, int, int]] = deque()
    frontier.append((int(start_node), 0, effective_ttl, source_fanout))

    if faults is None:
        # The fault-free fast path: exactly the pre-resilience protocol
        # (equivalence tests pin this loop bit-identical to the seed when
        # no hop budget or quarantine narrows it).
        while frontier:
            node, hop, ttl, fanout = frontier.popleft()
            visit(node, hop)
            ttl -= 1  # Fig. 1 step 3
            if ttl <= 0:
                # Fig. 1 step 4b: discard (response backtracks).  When the
                # horizon was the deadline budget rather than the real TTL,
                # the results are best-so-far partials, flagged as such.
                if capped:
                    result.degraded = True
                    result.deadline_hit = True
                continue
            for target in next_hops(node, fanout, exclude=avoid):
                target = int(target)
                remember(node, target)
                remember(target, node)
                result.messages += 1
                frontier.append((target, hop + 1, ttl, 1))
        return result

    # ------------------------------------------------- failure-resilient walk
    res = resilience or ResilienceConfig()
    if not faults.alive(int(start_node), 0.0):
        # The querying node itself is down: nothing can even be evaluated.
        result.degraded = True
        result.walkers_lost = source_fanout
        return result

    while frontier:
        node, hop, ttl, fanout = frontier.popleft()
        zombie = faults.is_zombie(node)
        if zombie:
            result.zombie_visits += 1
        visit(node, hop, skip_store=zombie)
        ttl -= 1  # Fig. 1 step 3
        if ttl <= 0:
            if capped:
                result.degraded = True
                result.deadline_hit = True
            continue
        # Forward `fanout` walkers one attempt at a time so a failure can
        # reroute to the next-best-scoring *live* neighbor.  `unreachable`
        # accumulates peers this node found dead (or already chose) at this
        # hop — seeded with the quarantine set, so peers a circuit breaker
        # already condemned cost zero attempts; failed attempts burn TTL
        # (timeout + backoff) and count against the per-hop retry budget.
        sent = 0
        failures = 0
        unreachable: set[int] = set(avoid) if avoid else set()
        died_of_faults = False
        while sent < fanout and ttl > 0:
            targets = next_hops(node, 1, exclude=unreachable)
            if targets.size == 0:
                died_of_faults = bool(unreachable)
                break
            target = int(targets[0])
            result.messages += 1
            if not faults.alive(target, float(hop + 1)):
                # No ack before the timeout: mark dead, reroute.
                failures += 1
                result.rerouted += 1
                faults.note_crash_detection()
                unreachable.add(target)
                result.failed_peers[target] = (
                    result.failed_peers.get(target, 0) + 1
                )
            elif not faults.deliver(node, target):
                # Message lost in flight: retry (same peer stays eligible).
                failures += 1
                result.retries += 1
                result.failed_peers[target] = (
                    result.failed_peers.get(target, 0) + 1
                )
            else:
                remember(node, target)
                remember(target, node)
                frontier.append((target, hop + 1, ttl, 1))
                unreachable.add(target)  # one walker per distinct peer
                sent += 1
                continue
            if failures > res.max_retries:
                died_of_faults = True
                break
            ttl -= res.retry_backoff
        if sent < fanout and (died_of_faults or (ttl <= 0 and failures > 0)):
            result.walkers_lost += fanout - sent
            result.degraded = True

    return result
