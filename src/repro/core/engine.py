"""The walk engine: TTL-bounded query forwarding (paper §IV-C, Fig. 1).

This is the synchronous fast path used by the experiment sweeps.  It executes
*exactly* the per-node protocol of Fig. 1 — evaluate locally, decrement TTL,
pick unvisited neighbors by embedding score, fall back to all neighbors when
every neighbor was already involved (footnote 9) — while keeping all state in
plain dictionaries instead of scheduling messages.  An integration test pins
its walks to the event-driven :class:`repro.core.protocol.QueryRoutingNode`
execution step for step, so the fast path is an accelerator, not a variant.

Privacy note (paper §IV-C): visited state is the per-(query, node) memory of
which neighbors a node received from / forwarded to — the query message never
carries the visited set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.forwarding import ForwardingPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.topk import ScoredDocument, TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.utils import check_positive, ensure_rng
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class WalkConfig:
    """Query execution parameters.

    Attributes
    ----------
    ttl:
        Time-to-live: the query message is forwarded while its decremented
        TTL stays positive, so at most ``ttl`` nodes evaluate it (the source
        at hop 0 through hop ``ttl − 1``).  The paper uses 50.
    fanout:
        Number of next hops selected at the source; 1 reproduces the paper's
        single biased random walk, larger values run parallel walks.
    k:
        Size of the query's running top-k result tracker (paper evaluates
        top-1).
    """

    ttl: int = 50
    fanout: int = 1
    k: int = 1

    def __post_init__(self) -> None:
        check_positive(self.ttl, "ttl")
        check_positive(self.fanout, "fanout")
        check_positive(self.k, "k")


@dataclass
class SearchResult:
    """Outcome of one query execution."""

    query_id: Hashable
    start_node: int
    tracker: TopKTracker
    visits: list[tuple[int, int]]  # (hop index, node id) in processing order
    discovered_at: dict[Hashable, int] = field(default_factory=dict)
    messages: int = 0

    @property
    def results(self) -> list[ScoredDocument]:
        """Final top-k documents, best first."""
        return self.tracker.items()

    @property
    def best(self) -> ScoredDocument | None:
        """The single best document found (None when nothing was found)."""
        return self.tracker.best()

    @property
    def path(self) -> list[int]:
        """Visited node ids in processing order (source first)."""
        return [node for _, node in self.visits]

    @property
    def unique_nodes_visited(self) -> int:
        return len({node for _, node in self.visits})

    @property
    def hops_used(self) -> int:
        """Largest hop index reached by any walker."""
        return max((hop for hop, _ in self.visits), default=0)

    def found(self, doc_id: Hashable, *, top: int | None = None) -> bool:
        """Did the query retrieve ``doc_id`` (within the best ``top`` results)?

        With ``top=None`` membership in the final tracker suffices; the
        paper's top-1 criterion is ``found(gold, top=1)``.
        """
        ids = self.tracker.doc_ids()
        if top is not None:
            ids = ids[:top]
        return doc_id in ids

    def hops_to(self, doc_id: Hashable) -> int | None:
        """Hop index at which ``doc_id`` was first encountered (None if never)."""
        return self.discovered_at.get(doc_id)


class _FrozenEmptyStore(DocumentStore):
    """Immutable empty store shared across queries of the same ``dim``.

    Nodes without documents are scored against this sentinel; freezing the
    mutators guarantees the shared instance can never accumulate documents
    and leak them into unrelated queries or networks.
    """

    def add(self, doc_id: Hashable, embedding: np.ndarray) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")

    def add_many(self, documents) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")

    def remove(self, doc_id: Hashable) -> None:
        raise TypeError("the shared empty-store sentinel is immutable")


_EMPTY_STORE_SENTINELS: dict[int, _FrozenEmptyStore] = {}


def _empty_store(dim: int) -> DocumentStore:
    store = _EMPTY_STORE_SENTINELS.get(dim)
    if store is None:
        store = _EMPTY_STORE_SENTINELS[dim] = _FrozenEmptyStore(dim)
    return store


def run_query(
    adjacency: CompressedAdjacency,
    stores: Mapping[int, DocumentStore],
    policy: ForwardingPolicy,
    query_embedding: np.ndarray,
    start_node: int,
    config: WalkConfig | None = None,
    *,
    query_id: Hashable = None,
    seed: RngLike = None,
) -> SearchResult:
    """Execute one query from ``start_node`` per the Fig. 1 protocol.

    Parameters
    ----------
    stores:
        Node id → local :class:`DocumentStore`; nodes without an entry hold
        no documents.
    policy:
        Next-hop selection (the paper's embedding-guided policy or a blind
        baseline).
    seed:
        Drives stochastic policies only; the default embedding-guided policy
        is deterministic.
    """
    config = config or WalkConfig()
    rng = ensure_rng(seed)
    query_embedding = np.asarray(query_embedding, dtype=np.float64)
    if not 0 <= start_node < adjacency.n_nodes:
        raise ValueError(f"start_node {start_node} out of range")

    dim = query_embedding.shape[0]
    tracker = TopKTracker(config.k)
    result = SearchResult(
        query_id=query_id,
        start_node=int(start_node),
        tracker=tracker,
        visits=[],
    )
    # Per-(query, node) neighbor memory: who this node received from or
    # forwarded to.  Kept engine-side but indexed per node — identical
    # information to the distributed implementation.  Each entry is a boolean
    # mask over the node's (sorted) CSR neighbor row, so the membership test
    # is a single fancy-index instead of a per-hop set→list→``np.isin`` scan.
    memory: dict[int, np.ndarray] = {}

    def visit(node: int, hop: int) -> None:
        result.visits.append((hop, node))
        store = stores.get(node) or _empty_store(dim)
        for doc_id, score in store.top_k(query_embedding, config.k):
            tracker.offer(doc_id, score, node)
            result.discovered_at.setdefault(doc_id, hop)

    def next_hops(node: int, fanout: int) -> np.ndarray:
        neighbors = adjacency.neighbors(node)
        if neighbors.size == 0:
            return neighbors
        seen = memory.get(node)
        candidates = neighbors if seen is None else neighbors[~seen]
        if candidates.size == 0:
            # Footnote 9: don't waste the remaining TTL — consider everyone.
            candidates = neighbors
        return policy.select(query_embedding, candidates, fanout, rng)

    def remember(node: int, other: int) -> None:
        """Mark ``other`` in ``node``'s neighbor-row memory mask."""
        neighbors = adjacency.neighbors(node)
        position = int(np.searchsorted(neighbors, other))
        if position >= neighbors.shape[0] or neighbors[position] != other:
            return  # not adjacent: can never be filtered, nothing to record
        seen = memory.get(node)
        if seen is None:
            seen = memory[node] = np.zeros(neighbors.shape[0], dtype=bool)
        seen[position] = True

    # Walker queue processed in hop order: (node, hop, remaining ttl before
    # this node's decrement, fanout for this node's forwarding decision).
    frontier: deque[tuple[int, int, int, int]] = deque()
    frontier.append((int(start_node), 0, config.ttl, config.fanout))

    while frontier:
        node, hop, ttl, fanout = frontier.popleft()
        visit(node, hop)
        ttl -= 1  # Fig. 1 step 3
        if ttl <= 0:
            continue  # Fig. 1 step 4b: discard (response backtracks)
        for target in next_hops(node, fanout):
            target = int(target)
            remember(node, target)
            remember(target, node)
            result.messages += 1
            frontier.append((target, hop + 1, ttl, 1))

    return result
