"""Forwarding policies: the next-hop decision of paper §IV-C.

A policy ranks a query's candidate next hops.  The paper's policy matches the
query embedding against the stored *diffused* embeddings of the candidate
neighbors by dot product and picks the best; blind policies (uniform random,
degree-biased) implement the unstructured-search baselines of §II-A behind
the same interface, so the walk engine runs them all identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.embeddings.similarity import dot_scores
from repro.graphs.adjacency import CompressedAdjacency
from repro.kernels import dispatch as kernels
from repro.retrieval.scoring import top_k_indices
from repro.utils import check_positive


def lookup_sorted_keys(
    keys: np.ndarray, values: np.ndarray, wanted: np.ndarray
) -> np.ndarray:
    """Gather ``values`` of sorted ``keys`` at ``wanted``; absent keys → 0.0.

    The shared CSR-lookup kernel of the sparse scoring paths
    (:meth:`PrecomputedScorePolicy.candidate_scores` and the batch engine's
    stacked sparse score table): one ``searchsorted`` over the whole query
    array, with misses scoring *exactly* ``0.0`` — the value a densified
    copy would hold — so sparse- and dense-backed decisions stay
    bit-identical.  The output dtype follows ``values`` (float32 tables
    stay float32).  Dispatched through :mod:`repro.kernels`.
    """
    return kernels.sparse_key_lookup(keys, values, wanted)


def _segment_top_k(
    keys: np.ndarray,
    offsets: np.ndarray,
    fanouts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment top-k over a flat key array (descending, ties by position).

    ``keys`` concatenates one score segment per walk; ``offsets`` are the
    ``(S+1,)`` segment boundaries.  Returns flat indices into ``keys`` of each
    segment's best ``fanouts[s]`` entries (best first within a segment,
    segments in order) plus the ``(S+1,)`` boundaries of the selection.  The
    ordering matches :func:`repro.retrieval.scoring.top_k_indices` applied
    per segment, which keeps batch walks bit-identical to scalar ones.
    """
    total = keys.shape[0]
    lens = np.diff(offsets)
    segments = np.repeat(np.arange(lens.shape[0]), lens)
    order = np.lexsort((np.arange(total), -keys, segments))
    counts = np.minimum(np.asarray(fanouts, dtype=np.int64), lens)
    rank = np.arange(total) - np.repeat(offsets[:-1], lens)
    chosen = order[rank < np.repeat(counts, lens)]
    chosen_offsets = np.concatenate(([0], np.cumsum(counts)))
    return chosen, chosen_offsets


class ForwardingPolicy(ABC):
    """Selects ``fanout`` next hops among candidate neighbor ids."""

    @abstractmethod
    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return up to ``fanout`` node ids drawn from ``candidates``."""

    def select_batch(
        self,
        query_embeddings: np.ndarray,
        candidates: np.ndarray,
        offsets: np.ndarray,
        fanouts: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Select next hops for ``S`` walks at once (batch engine hook).

        ``candidates`` concatenates one candidate segment per walk (node ids,
        ascending within a segment); segment ``s`` spans
        ``candidates[offsets[s]:offsets[s + 1]]`` and is scored against
        ``query_embeddings[s]`` with per-walk generator ``rngs[s]``.  Returns
        ``(chosen, chosen_offsets)`` where ``chosen`` holds flat indices into
        ``candidates`` (selection order within each segment) and
        ``chosen_offsets`` the per-segment boundaries of ``chosen``.

        The base implementation falls back to one :meth:`select` call per
        segment, so custom scalar policies work in the batch engine
        unchanged; built-in policies override it with array-level selection.
        """
        chosen_parts: list[np.ndarray] = []
        counts = np.zeros(len(rngs), dtype=np.int64)
        for s, rng in enumerate(rngs):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            if hi == lo:
                continue
            segment = candidates[lo:hi]
            picked = np.asarray(
                self.select(query_embeddings[s], segment, int(fanouts[s]), rng),
                dtype=np.int64,
            )
            if picked.size == 0:
                continue
            positions = np.searchsorted(segment, picked)
            in_range = positions < segment.shape[0]
            if not (
                np.all(in_range)
                and np.array_equal(segment[positions[in_range]], picked[in_range])
            ):
                raise ValueError(
                    f"policy {self.describe()!r} selected nodes outside its "
                    "candidate set; select() must return a subset of candidates"
                )
            chosen_parts.append(lo + positions)
            counts[s] = positions.shape[0]
        chosen = (
            np.concatenate(chosen_parts)
            if chosen_parts
            else np.empty(0, dtype=np.int64)
        )
        return chosen, np.concatenate(([0], np.cumsum(counts)))

    def describe(self) -> str:
        """Short human-readable policy name for reports."""
        return type(self).__name__


class EmbeddingGuidedPolicy(ForwardingPolicy):
    """The paper's policy: forward toward the highest ``e_q · e_v``.

    Parameters
    ----------
    embeddings:
        The diffused node embedding matrix ``E`` (eq. 6) — dense, or a
        ``scipy.sparse`` matrix as cached by the ``sparse`` diffusion
        backend; CSR rows are scored directly, without densifying the
        matrix.  In deployment each node stores only its neighbors' rows
        (collected during diffusion); the policy reads exactly those rows,
        so the information access pattern is identical.
    temperature:
        0 (default) reproduces the paper's deterministic argmax (ties broken
        by ascending node id).  A positive temperature samples next hops from
        a softmax over scores — an exploration ablation.
    """

    def __init__(
        self,
        embeddings: np.ndarray | sp.spmatrix,
        *,
        temperature: float = 0.0,
    ) -> None:
        if sp.issparse(embeddings):
            # float32 CSR caches (the float32 diffusion pipeline) are scored
            # in float32; every other dtype coerces to float64 as before.
            matrix = embeddings.tocsr()
            matrix = matrix.astype(
                np.float32 if matrix.dtype == np.float32 else np.float64
            )
            if matrix is embeddings:
                matrix = matrix.copy()
            matrix.sort_indices()
            self._sparse = True
        else:
            matrix = np.asarray(embeddings)
            if matrix.dtype != np.float32:
                matrix = np.asarray(matrix, dtype=np.float64)
            self._sparse = False
        if matrix.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape {matrix.shape}")
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        self.embeddings = matrix
        self.temperature = float(temperature)

    def scores(self, query_embedding: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Dot-product relevance of each candidate's diffused embedding."""
        if self._sparse:
            query = np.asarray(query_embedding, dtype=np.float64)
            if query.ndim != 1 or query.shape[0] != self.embeddings.shape[1]:
                raise ValueError(
                    f"dimension mismatch: query has shape {query.shape}, "
                    f"embeddings have {self.embeddings.shape[1]} dims"
                )
            # CSR row gather @ dense query: O(nnz of the candidate rows).
            return np.asarray(self.embeddings[candidates] @ query).ravel()
        return dot_scores(query_embedding, self.embeddings[candidates])

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        scores = self.scores(query_embedding, candidates)
        if self.temperature == 0.0:
            return candidates[top_k_indices(scores, fanout)]
        logits = scores / self.temperature
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        count = min(fanout, candidates.size)
        chosen = rng.choice(candidates.size, size=count, replace=False, p=probs)
        return candidates[np.sort(chosen)]

    def select_batch(
        self,
        query_embeddings: np.ndarray,
        candidates: np.ndarray,
        offsets: np.ndarray,
        fanouts: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.temperature != 0.0:
            # Stochastic exploration keeps the per-segment sampling of the
            # scalar path (one draw per walk from its own generator).
            return super().select_batch(
                query_embeddings, candidates, offsets, fanouts, rngs
            )
        # Scores are computed with the same dot_scores call per segment as
        # the scalar path (bit-identical floats); only membership filtering
        # and the top-k selection are batched.
        scores = np.empty(candidates.shape[0], dtype=np.float64)
        for s in range(len(rngs)):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            if hi > lo:
                scores[lo:hi] = self.scores(query_embeddings[s], candidates[lo:hi])
        return _segment_top_k(scores, offsets, fanouts)

    def describe(self) -> str:
        if self.temperature:
            return f"embedding-guided(T={self.temperature})"
        return "embedding-guided"


class PrecomputedScorePolicy(ForwardingPolicy):
    """Forward toward the highest precomputed per-node relevance score.

    Exploits the linearity of the diffusion: since the walk only ever
    compares ``e_q · e_v`` and ``E = H E0``, diffusing the scalar signal
    ``x0 = E0 e_q`` once yields ``s = H x0 = E e_q`` — exactly the scores the
    embedding-guided policy computes, at 1/dim of the cost.  The experiment
    harness relies on this; an integration test pins its walks to
    :class:`EmbeddingGuidedPolicy` over the full embedding matrix.

    ``scores`` may also be a ``scipy.sparse`` vector (shape ``(n, 1)`` or
    ``(1, n)``, as produced by the sparse diffusion pipeline); stored entries
    keep their value, absent nodes score exactly ``0.0`` — the same numbers
    a densified copy would hold, so sparse- and dense-backed policies make
    bit-identical decisions.  Lookups run in ``O(log nnz)`` per candidate
    without ever materializing the dense vector.
    """

    def __init__(self, scores: np.ndarray | sp.spmatrix) -> None:
        if sp.issparse(scores):
            if 1 not in scores.shape:
                raise ValueError(
                    "sparse scores must be a vector of shape (n, 1) or "
                    f"(1, n), got shape {scores.shape}"
                )
            column = (
                scores.tocsc() if scores.shape[1] == 1 else scores.tocsr().T.tocsc()
            )
            # Unconditional copy: the conversions above can return the
            # caller's object or share its buffers (e.g. csr.T views), and
            # the canonicalization below mutates in place.
            column = column.copy()
            column.sum_duplicates()
            column.sort_indices()
            self.node_scores = None
            self.n_nodes = int(max(scores.shape))
            self._sparse_indices = np.asarray(column.indices, dtype=np.int64)
            values = np.asarray(column.data)
            if values.dtype != np.float32:
                values = np.asarray(values, dtype=np.float64)
            self._sparse_values = values
            return
        scores = np.asarray(scores)
        if scores.dtype != np.float32:
            scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
        self.node_scores = scores
        self.n_nodes = scores.shape[0]
        self._sparse_indices = None
        self._sparse_values = None

    def candidate_scores(self, candidates: np.ndarray) -> np.ndarray:
        """Per-candidate score: table lookup (dense) or CSR lookup (sparse)."""
        if self.node_scores is not None:
            return self.node_scores[candidates]
        return lookup_sorted_keys(
            self._sparse_indices, self._sparse_values, candidates
        )

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        return candidates[top_k_indices(self.candidate_scores(candidates), fanout)]

    def select_batch(
        self,
        query_embeddings: np.ndarray,
        candidates: np.ndarray,
        offsets: np.ndarray,
        fanouts: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        return _segment_top_k(self.candidate_scores(candidates), offsets, fanouts)

    def describe(self) -> str:
        return "embedding-guided(precomputed)"


class RandomWalkPolicy(ForwardingPolicy):
    """Blind uniform forwarding: the classic random-walk baseline."""

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        count = min(fanout, candidates.size)
        chosen = rng.choice(candidates.size, size=count, replace=False)
        return candidates[np.sort(chosen)]

    def select_batch(
        self,
        query_embeddings: np.ndarray,
        candidates: np.ndarray,
        offsets: np.ndarray,
        fanouts: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        # A uniform subset without replacement equals keeping the largest
        # random keys; keys come from each walk's own generator, so batch
        # walks stay distributionally equivalent to scalar ones per walk.
        keys = np.empty(candidates.shape[0], dtype=np.float64)
        for s, rng in enumerate(rngs):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            if hi > lo:
                keys[lo:hi] = rng.random(hi - lo)
        chosen, chosen_offsets = _segment_top_k(keys, offsets, fanouts)
        # Scalar select() returns its subset in ascending candidate order;
        # restore that ordering within each segment.
        segments = np.repeat(
            np.arange(len(rngs)), np.diff(chosen_offsets)
        )
        return chosen[np.lexsort((chosen, segments))], chosen_offsets

    def describe(self) -> str:
        return "random-walk"


class DegreeBiasedPolicy(ForwardingPolicy):
    """Forward toward high-degree nodes (hub-seeking blind baseline).

    High-degree nodes see more documents and more queries; seeking them is
    the classic heuristic of Adamic et al. for power-law P2P networks.
    """

    def __init__(self, adjacency: CompressedAdjacency) -> None:
        self.degrees = adjacency.degrees

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        scores = self.degrees[candidates].astype(np.float64)
        return candidates[top_k_indices(scores, fanout)]

    def select_batch(
        self,
        query_embeddings: np.ndarray,
        candidates: np.ndarray,
        offsets: np.ndarray,
        fanouts: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, np.ndarray]:
        scores = self.degrees[candidates].astype(np.float64)
        return _segment_top_k(scores, offsets, fanouts)

    def describe(self) -> str:
        return "degree-biased"
