"""Forwarding policies: the next-hop decision of paper §IV-C.

A policy ranks a query's candidate next hops.  The paper's policy matches the
query embedding against the stored *diffused* embeddings of the candidate
neighbors by dot product and picks the best; blind policies (uniform random,
degree-biased) implement the unstructured-search baselines of §II-A behind
the same interface, so the walk engine runs them all identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.embeddings.similarity import dot_scores
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.scoring import top_k_indices
from repro.utils import check_positive


class ForwardingPolicy(ABC):
    """Selects ``fanout`` next hops among candidate neighbor ids."""

    @abstractmethod
    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return up to ``fanout`` node ids drawn from ``candidates``."""

    def describe(self) -> str:
        """Short human-readable policy name for reports."""
        return type(self).__name__


class EmbeddingGuidedPolicy(ForwardingPolicy):
    """The paper's policy: forward toward the highest ``e_q · e_v``.

    Parameters
    ----------
    embeddings:
        The diffused node embedding matrix ``E`` (eq. 6).  In deployment each
        node stores only its neighbors' rows (collected during diffusion);
        the policy reads exactly those rows, so the information access
        pattern is identical.
    temperature:
        0 (default) reproduces the paper's deterministic argmax (ties broken
        by ascending node id).  A positive temperature samples next hops from
        a softmax over scores — an exploration ablation.
    """

    def __init__(self, embeddings: np.ndarray, *, temperature: float = 0.0) -> None:
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape {embeddings.shape}")
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        self.embeddings = embeddings
        self.temperature = float(temperature)

    def scores(self, query_embedding: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Dot-product relevance of each candidate's diffused embedding."""
        return dot_scores(query_embedding, self.embeddings[candidates])

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        scores = self.scores(query_embedding, candidates)
        if self.temperature == 0.0:
            return candidates[top_k_indices(scores, fanout)]
        logits = scores / self.temperature
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        count = min(fanout, candidates.size)
        chosen = rng.choice(candidates.size, size=count, replace=False, p=probs)
        return candidates[np.sort(chosen)]

    def describe(self) -> str:
        if self.temperature:
            return f"embedding-guided(T={self.temperature})"
        return "embedding-guided"


class PrecomputedScorePolicy(ForwardingPolicy):
    """Forward toward the highest precomputed per-node relevance score.

    Exploits the linearity of the diffusion: since the walk only ever
    compares ``e_q · e_v`` and ``E = H E0``, diffusing the scalar signal
    ``x0 = E0 e_q`` once yields ``s = H x0 = E e_q`` — exactly the scores the
    embedding-guided policy computes, at 1/dim of the cost.  The experiment
    harness relies on this; an integration test pins its walks to
    :class:`EmbeddingGuidedPolicy` over the full embedding matrix.
    """

    def __init__(self, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
        self.node_scores = scores

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        return candidates[top_k_indices(self.node_scores[candidates], fanout)]

    def describe(self) -> str:
        return "embedding-guided(precomputed)"


class RandomWalkPolicy(ForwardingPolicy):
    """Blind uniform forwarding: the classic random-walk baseline."""

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        count = min(fanout, candidates.size)
        chosen = rng.choice(candidates.size, size=count, replace=False)
        return candidates[np.sort(chosen)]

    def describe(self) -> str:
        return "random-walk"


class DegreeBiasedPolicy(ForwardingPolicy):
    """Forward toward high-degree nodes (hub-seeking blind baseline).

    High-degree nodes see more documents and more queries; seeking them is
    the classic heuristic of Adamic et al. for power-law P2P networks.
    """

    def __init__(self, adjacency: CompressedAdjacency) -> None:
        self.degrees = adjacency.degrees

    def select(
        self,
        query_embedding: np.ndarray,
        candidates: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive(fanout, "fanout")
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return candidates
        scores = self.degrees[candidates].astype(np.float64)
        return candidates[top_k_indices(scores, fanout)]

    def describe(self) -> str:
        return "degree-biased"
