"""Node personalization vectors (paper §IV-A).

The paper represents each node by the *sum* of its document embeddings: by
linearity, ``e_q · e0_v = Σ_d e_q · e_d`` is the total relevance of the
node's documents (eq. 3).  The paper notes this "runs the risk of
prioritizing nodes with many irrelevant documents over nodes with a few but
relevant documents"; the alternative weightings here exist to ablate exactly
that risk.
"""

from __future__ import annotations

from typing import Literal, Mapping

import numpy as np

from repro.embeddings.similarity import l2_normalize
from repro.retrieval.vector_store import DocumentStore

PersonalizationWeighting = Literal["sum", "mean", "sqrt", "l2"]

_WEIGHTINGS = ("sum", "mean", "sqrt", "l2")


def personalization_vector(
    doc_embeddings: np.ndarray,
    weighting: PersonalizationWeighting = "sum",
) -> np.ndarray:
    """Summarize a document collection into one vector.

    * ``sum`` — the paper's choice: favors large collections.
    * ``mean`` — removes the collection-size bias entirely.
    * ``sqrt`` — divides the sum by ``sqrt(m)``: keeps a damped size signal
      while normalizing the variance of the summed noise.
    * ``l2`` — unit-normalized sum: comparable scale across all nodes.
    """
    doc_embeddings = np.asarray(doc_embeddings, dtype=np.float64)
    if doc_embeddings.ndim == 1:
        doc_embeddings = doc_embeddings[None, :]
    if doc_embeddings.ndim != 2:
        raise ValueError(
            f"doc_embeddings must be 1-D or 2-D, got shape {doc_embeddings.shape}"
        )
    count = doc_embeddings.shape[0]
    if count == 0:
        raise ValueError("cannot summarize an empty collection; handle upstream")
    total = doc_embeddings.sum(axis=0)
    if weighting == "sum":
        return total
    if weighting == "mean":
        return total / count
    if weighting == "sqrt":
        return total / np.sqrt(count)
    if weighting == "l2":
        return l2_normalize(total)
    raise ValueError(
        f"unknown weighting {weighting!r}; expected one of {_WEIGHTINGS}"
    )


def personalization_matrix(
    stores: Mapping[int, DocumentStore],
    n_nodes: int,
    dim: int,
    weighting: PersonalizationWeighting = "sum",
) -> np.ndarray:
    """Stack per-node personalization vectors into the ``E0`` matrix.

    Nodes with no documents get the zero vector: they advertise nothing, and
    under PPR their diffused embedding is exactly the aggregation of their
    neighborhood (eq. 6 with a zero personalization column).
    """
    matrix = np.zeros((n_nodes, dim), dtype=np.float64)
    for node_id, store in stores.items():
        if not 0 <= node_id < n_nodes:
            raise ValueError(f"node id {node_id} out of range [0, {n_nodes})")
        if len(store) == 0:
            continue
        matrix[node_id] = personalization_vector(store.matrix(), weighting)
    return matrix
