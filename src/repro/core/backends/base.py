"""Diffusion backend protocol and registry.

A :class:`DiffusionBackend` encapsulates one execution strategy for the PPR
diffusion of eq. (6) — how the warm-up of Fig. 2 (lines 3–6) is actually
computed.  :func:`repro.core.diffusion.diffuse_embeddings` dispatches by
backend name, so experiments (and third-party code) can plug in new
strategies with :func:`register_backend` without touching call sites::

    @register_backend
    class MyBackend(DiffusionBackend):
        name = "mine"
        def diffuse(self, topology, personalization, **kwargs): ...

    diffuse_embeddings(adjacency, e0, method="mine")

Backends that set :attr:`~DiffusionBackend.supports_incremental` additionally
implement :meth:`~DiffusionBackend.refresh`: patching an existing diffusion
from a sparse personalization delta instead of recomputing from scratch
(see :mod:`repro.gsp.push`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Type

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import NormalizationKind
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class DiffusionOutcome:
    """Diffused embeddings plus cost diagnostics.

    ``iterations`` counts power-iteration sweeps (or 1 for the exact solve,
    or events for the async protocol); ``messages``/``events`` are populated
    only by the async strategy; ``operations`` counts edge traversals for
    the push backend (the unit that makes full and incremental runs
    comparable); ``incremental`` marks an outcome produced by patching a
    previous diffusion rather than recomputing it.

    ``embeddings`` is a dense array for the standard backends; backends with
    ``accepts_sparse`` (built-in: ``sparse``) return a ``scipy.sparse`` CSR
    matrix instead — consumers that need a dense view call ``.toarray()``
    (the search facade does this lazily).

    ``residual_l1`` is the L1 norm of the leftover residual for backends
    built on the push kernels (``push``, ``sparse`` refresh): since
    ``‖H‖₁ ≤ 1`` for a column-normalized operator, it upper-bounds the L1
    error the outcome leaves behind — the quantity staleness trackers
    accumulate across incremental refreshes.  Backends without residual
    bookkeeping leave it at 0.
    """

    embeddings: np.ndarray
    method: str
    alpha: float
    iterations: int
    residual: float
    converged: bool
    messages: int = 0
    events: int = 0
    sim_time: float = 0.0
    operations: int = 0
    incremental: bool = False
    residual_l1: float = 0.0


class DiffusionBackend(ABC):
    """One execution strategy for the PPR diffusion warm-up.

    Subclasses define a unique :attr:`name` (the ``method=`` string) and
    implement :meth:`diffuse`.  Backends able to patch an existing diffusion
    from a sparse personalization change set
    :attr:`supports_incremental = True` and implement :meth:`refresh`.
    """

    #: Registry key; the ``method=`` argument of ``diffuse_embeddings``.
    name: ClassVar[str]

    #: Whether :meth:`refresh` is implemented.
    supports_incremental: ClassVar[bool] = False

    #: Whether :meth:`diffuse`/:meth:`refresh` accept ``scipy.sparse``
    #: personalization/embedding matrices without densification (and may
    #: return a sparse ``DiffusionOutcome.embeddings``).  Dispatchers densify
    #: sparse inputs before handing them to backends that leave this False.
    accepts_sparse: ClassVar[bool] = False

    @abstractmethod
    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        """Diffuse ``personalization`` from scratch (cold start)."""

    def refresh(
        self,
        topology: CompressedAdjacency,
        embeddings: np.ndarray,
        delta: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
    ) -> DiffusionOutcome:
        """Patch ``embeddings`` for a personalization change of ``delta``.

        ``delta`` is the (mostly zero) row-wise difference between the new
        and the previously diffused personalization matrix; by linearity the
        corrected diffusion is ``embeddings + H delta``.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support incremental refresh"
        )

    def diffuse_operator(
        self,
        operator,
        personalization: np.ndarray,
        *,
        alpha: float,
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        """Diffuse against a pre-built normalized operator.

        The hook the sharded precompute (:mod:`repro.core.shard`) drives:
        shard operators are *slices of the globally normalized operator*,
        so they cannot be reconstructed from a topology + normalization
        pair — the caller hands the ``scipy.sparse`` operator over
        directly.  Backends whose :meth:`diffuse` is "normalize, then run a
        kernel over the operator" implement this with the kernel half and
        route :meth:`diffuse` through it (built-in: ``sparse``); backends
        whose execution is inseparable from the topology (``async``) leave
        it unimplemented and cannot serve as sharding inner engines.
        """
        raise NotImplementedError(
            f"backend {self.name!r} cannot diffuse a raw operator; "
            "use a backend that implements diffuse_operator (built-in: "
            "'sparse') as the sharded inner engine"
        )


_REGISTRY: dict[str, Type[DiffusionBackend]] = {}


def register_backend(
    backend_cls: Type[DiffusionBackend], *, overwrite: bool = False
) -> Type[DiffusionBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    name = getattr(backend_cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"{backend_cls!r} must define a non-empty string 'name' attribute"
        )
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"diffusion backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = backend_cls
    return backend_cls


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> DiffusionBackend:
    """Instantiate the backend registered under ``name``."""
    backend_cls = _REGISTRY.get(name)
    if backend_cls is None:
        raise ValueError(
            f"unknown diffusion method {name!r}; "
            f"registered backends: {available_backends()}"
        )
    return backend_cls()


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))
