"""Pluggable diffusion execution backends.

Importing this package registers the six built-in strategies:

* ``power`` — synchronous power iteration of eq. (7).
* ``solve`` — exact sparse direct solve of eq. (6); ground truth.
* ``async`` — the decentralized event-driven protocol.
* ``push``  — residual Forward Push / Gauss–Southwell with
  ``supports_incremental = True`` (sparse-delta refresh).
* ``sparse`` — pruned CSR power iteration (``accepts_sparse``): embeddings
  stay in ``scipy.sparse`` form from personalization through forwarding,
  with degree-normalized ε-truncation bounding support; also
  ``supports_incremental`` via the multi-column sparse push kernel.
* ``sharded`` — community-partitioned parallel precompute
  (:mod:`repro.core.shard`): per-shard ``sparse`` diffusion across a
  forked process pool with exact cross-shard residual exchange; both
  ``accepts_sparse`` and ``supports_incremental``.

New strategies plug in via :func:`register_backend`; see
:mod:`repro.core.backends.base` for the interface contract.
"""

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.backends.standard import (
    ASYNC_RESIDUAL_SLACK,
    AsyncProtocolBackend,
    PowerIterationBackend,
    SparseSolveBackend,
)
from repro.core.backends.push import PushDiffusionBackend
from repro.core.backends.sparse import SparseDiffusionBackend
from repro.core.backends.sharded import ShardedDiffusionBackend

__all__ = [
    "DiffusionBackend",
    "DiffusionOutcome",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "ASYNC_RESIDUAL_SLACK",
    "AsyncProtocolBackend",
    "PowerIterationBackend",
    "SparseSolveBackend",
    "PushDiffusionBackend",
    "SparseDiffusionBackend",
    "ShardedDiffusionBackend",
]
