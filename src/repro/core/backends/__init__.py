"""Pluggable diffusion execution backends.

Importing this package registers the four built-in strategies:

* ``power`` — synchronous power iteration of eq. (7).
* ``solve`` — exact sparse direct solve of eq. (6); ground truth.
* ``async`` — the decentralized event-driven protocol.
* ``push``  — residual Forward Push / Gauss–Southwell; the only backend
  with ``supports_incremental = True`` (sparse-delta refresh).

New strategies plug in via :func:`register_backend`; see
:mod:`repro.core.backends.base` for the interface contract.
"""

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.backends.standard import (
    ASYNC_RESIDUAL_SLACK,
    AsyncProtocolBackend,
    PowerIterationBackend,
    SparseSolveBackend,
)
from repro.core.backends.push import PushDiffusionBackend

__all__ = [
    "DiffusionBackend",
    "DiffusionOutcome",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "ASYNC_RESIDUAL_SLACK",
    "AsyncProtocolBackend",
    "PowerIterationBackend",
    "SparseSolveBackend",
    "PushDiffusionBackend",
]
