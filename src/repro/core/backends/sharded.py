"""Sharded backend: community-partitioned parallel precompute.

Wraps the residual-mailbox driver of :mod:`repro.core.shard` behind the
:class:`DiffusionBackend` interface, so ``method="sharded"`` composes with
every dispatcher and the :class:`~repro.core.search.DiffusionSearchNetwork`
facade exactly like ``sparse`` does — including the CSR embedding cache and
incremental refresh (a sparse delta re-enters the same mailbox loop; by
linearity the patched diffusion is ``embeddings + H delta``).

The backend is a *wrapper*: any inner backend implementing
``diffuse_operator`` (built-in: ``sparse``) supplies the per-shard kernel,
and the constructor knobs pick the partition, executor, and pool width::

    diffuse_embeddings(graph, e0, method="sharded")          # defaults
    diffuse_embeddings(
        graph, e0,
        method=ShardedDiffusionBackend(8, workers=4, partition="degree"),
    )

Shard plans are memoized on the adjacency (see
:func:`repro.core.shard.build_shard_plan`), so repeated diffusions — and
refresh after refresh — pay the partition and operator slicing once.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    get_backend,
    register_backend,
)
from repro.core.shard import (
    DEFAULT_MAX_ROUNDS,
    PoolShardExecutor,
    SerialShardExecutor,
    ShardedRunReport,
    ShardPlan,
    build_shard_plan,
    make_worker_state,
    sharded_diffuse,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import coerce_sparse_signal
from repro.gsp.normalization import NormalizationKind
from repro.runtime.network import LatencyModel
from repro.utils import check_positive
from repro.utils.rng import RngLike


@register_backend
class ShardedDiffusionBackend(DiffusionBackend):
    """Partition, diffuse per shard in parallel, exchange boundary residuals.

    Parameters
    ----------
    n_shards:
        Partition width (clamped to ``n_nodes``).  More shards expose more
        parallelism but raise the cross-shard edge fraction, i.e. the
        residual traffic per round.
    inner:
        The per-shard kernel — a backend name or instance implementing
        ``diffuse_operator`` (default ``"sparse"``; pass
        ``SparseDiffusionBackend(epsilon=...)`` for other pruning levels).
    partition:
        ``"community"`` (default) or ``"degree"`` — see
        :func:`repro.core.shard.build_shard_plan`.
    executor:
        ``"pool"`` (default) fans shards out to a forked process pool;
        ``"serial"`` runs them in-process (debugging/equivalence — the two
        are bit-identical).  Where ``fork`` is unavailable the pool
        degrades to serial with a ``UserWarning``.
    workers:
        Pool width; default ``min(n_shards, os.cpu_count())``.
    task_timeout:
        Seconds to wait for one pool round before treating a worker as
        dead and retrying the round on a fresh pool (self-healing; see
        :class:`repro.core.shard.PoolShardExecutor`).  ``None`` (default)
        waits forever, the behavior of a fault-free deployment.
    pool_retries:
        Pool-failure retry budget before degrading to the serial executor.
    """

    name = "sharded"
    supports_incremental = True
    accepts_sparse = True

    def __init__(
        self,
        n_shards: int = 4,
        *,
        inner: str | DiffusionBackend = "sparse",
        partition: str = "community",
        executor: str = "pool",
        workers: int | None = None,
        partition_seed: int = 0,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        task_timeout: float | None = None,
        pool_retries: int = 2,
    ) -> None:
        check_positive(n_shards, "n_shards")
        check_positive(max_rounds, "max_rounds")
        if executor not in ("pool", "serial"):
            raise ValueError(
                f"executor must be 'pool' or 'serial', got {executor!r}"
            )
        if workers is not None:
            check_positive(workers, "workers")
        self.n_shards = int(n_shards)
        self.inner = (
            inner if isinstance(inner, DiffusionBackend) else get_backend(inner)
        )
        self.partition = partition
        self.executor = executor
        self.workers = workers
        self.partition_seed = int(partition_seed)
        self.max_rounds = int(max_rounds)
        self.task_timeout = task_timeout
        self.pool_retries = int(pool_retries)
        #: Diagnostics of the most recent run (rounds, per-shard seconds,
        #: critical path) — how the scale benchmark reads modeled speedup.
        self.last_report: ShardedRunReport | None = None

    # ------------------------------------------------------------- plumbing

    def plan_for(
        self,
        topology: CompressedAdjacency,
        normalization: NormalizationKind = "column",
    ) -> ShardPlan:
        """The (memoized) shard plan this backend uses on ``topology``."""
        return build_shard_plan(
            topology,
            min(self.n_shards, max(1, topology.n_nodes)),
            partition=self.partition,
            normalization=normalization,
            partition_seed=self.partition_seed,
        )

    def _make_executor(
        self, plan: ShardPlan, *, alpha, tol, max_iterations, seed
    ) -> SerialShardExecutor | PoolShardExecutor:
        state = make_worker_state(
            plan,
            self.inner,
            alpha=alpha,
            tol=tol,
            max_iterations=max_iterations,
            seed=seed,
        )
        if self.executor != "pool":
            return SerialShardExecutor(state)
        workers = self.workers
        if workers is None:
            workers = min(plan.n_shards, os.cpu_count() or 1)
        # Where `fork` is unavailable the constructor degrades to a
        # SerialShardExecutor with a UserWarning (never a hard error).
        return PoolShardExecutor(
            state,
            max(1, min(workers, plan.n_shards)),
            task_timeout=self.task_timeout,
            max_retries=self.pool_retries,
        )

    def _run(
        self,
        topology: CompressedAdjacency,
        signal: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        normalization: NormalizationKind,
        tol: float,
        max_iterations: int,
        seed: RngLike,
    ) -> tuple[sp.csr_matrix, ShardedRunReport]:
        plan = self.plan_for(topology, normalization)
        executor = self._make_executor(
            plan, alpha=alpha, tol=tol, max_iterations=max_iterations, seed=seed
        )
        try:
            estimate, report = sharded_diffuse(
                plan,
                signal,
                self.inner,
                alpha=alpha,
                tol=tol,
                max_iterations=max_iterations,
                max_rounds=self.max_rounds,
                executor=executor,
            )
        finally:
            executor.close()
        self.last_report = report
        return estimate, report

    # ------------------------------------------------------------ interface

    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        estimate, report = self._run(
            topology,
            personalization,
            alpha=alpha,
            normalization=normalization,
            tol=tol,
            max_iterations=max_iterations,
            seed=seed,
        )
        return DiffusionOutcome(
            embeddings=estimate,
            method=self.name,
            alpha=alpha,
            iterations=report.inner_iterations,
            residual=report.residual,
            converged=report.converged,
        )

    def refresh(
        self,
        topology: CompressedAdjacency,
        embeddings: np.ndarray | sp.spmatrix,
        delta: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
    ) -> DiffusionOutcome:
        correction, report = self._run(
            topology,
            delta,
            alpha=alpha,
            normalization=normalization,
            tol=tol,
            max_iterations=max_iterations,
            seed=None,
        )
        cached, _ = coerce_sparse_signal(
            embeddings,
            topology.n_nodes,
            np.dtype(getattr(self.inner, "dtype", np.float64)),
        )
        patched = (cached + correction).tocsr()
        return DiffusionOutcome(
            embeddings=patched,
            method=self.name,
            alpha=alpha,
            iterations=report.inner_iterations,
            residual=report.residual,
            converged=report.converged,
            incremental=True,
        )
