"""Forward-push backend: local diffusion with incremental refresh.

Wraps the residual kernel of :mod:`repro.gsp.push` behind the
:class:`DiffusionBackend` interface.  Unlike ``power``/``solve``/``async``,
this backend supports :meth:`~PushDiffusionBackend.refresh`: after a sparse
change to the personalization matrix (a document placed or removed on a
handful of nodes) it patches the existing diffused embeddings by diffusing
only the *delta*, at a cost proportional to the change rather than the
network size.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    register_backend,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import NormalizationKind, transition_matrix
from repro.gsp.push import forward_push, push_refresh
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike


@register_backend
class PushDiffusionBackend(DiffusionBackend):
    """Residual-based Forward Push / Gauss–Southwell execution."""

    name = "push"
    supports_incremental = True

    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        operator = transition_matrix(topology, normalization, fmt="csc")
        result = forward_push(
            operator,
            personalization,
            alpha=alpha,
            tol=tol,
            max_sweeps=max_iterations,
        )
        return DiffusionOutcome(
            embeddings=result.estimate,
            method=self.name,
            alpha=alpha,
            iterations=result.sweeps,
            residual=result.residual,
            converged=result.converged,
            operations=result.edge_operations,
            residual_l1=result.residual_l1,
        )

    def refresh(
        self,
        topology: CompressedAdjacency,
        embeddings: np.ndarray,
        delta: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
    ) -> DiffusionOutcome:
        operator = transition_matrix(topology, normalization, fmt="csc")
        patched, result = push_refresh(
            operator,
            embeddings,
            delta,
            alpha=alpha,
            tol=tol,
            max_sweeps=max_iterations,
        )
        return DiffusionOutcome(
            embeddings=patched,
            method=self.name,
            alpha=alpha,
            iterations=result.sweeps,
            residual=result.residual,
            converged=result.converged,
            operations=result.edge_operations,
            residual_l1=result.residual_l1,
            incremental=True,
        )
