"""The seed strategies as backends: power iteration, exact solve, async.

These wrap the pre-existing implementations (:class:`PersonalizedPageRank`
and :class:`AsyncPPRDiffusion`) behind the :class:`DiffusionBackend`
interface; their numerical behaviour is unchanged from the original
``diffuse_embeddings`` branches.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    register_backend,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import NormalizationKind, transition_matrix
from repro.runtime.gossip import AsyncPPRDiffusion
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike

#: Slack factor of the async convergence criterion (see
#: :meth:`AsyncProtocolBackend.is_converged`).
ASYNC_RESIDUAL_SLACK = 10.0


class _FilterBackend(DiffusionBackend):
    """Shared plumbing for the strategies backed by the PPR graph filter."""

    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        operator = transition_matrix(topology, normalization)
        ppr = PersonalizedPageRank(
            alpha, tol=tol, max_iterations=max_iterations, method=self.name
        )
        detail = ppr.apply_detailed(operator, personalization)
        return DiffusionOutcome(
            embeddings=np.asarray(detail.signal),
            method=self.name,
            alpha=alpha,
            iterations=detail.iterations,
            residual=detail.residual,
            converged=detail.converged,
        )


@register_backend
class PowerIterationBackend(_FilterBackend):
    """Synchronous power iteration of eq. (7): the coordinated network."""

    name = "power"


@register_backend
class SparseSolveBackend(_FilterBackend):
    """Exact sparse direct solve of eq. (6): ground truth."""

    name = "solve"


@register_backend
class AsyncProtocolBackend(DiffusionBackend):
    """The decentralized event-driven protocol (what the real P2P runs)."""

    name = "async"

    @staticmethod
    def is_converged(residual: float, tol: float, n_nodes: int) -> bool:
        """Convergence test for the quiesced asynchronous protocol.

        The protocol quiesces when every *node* stops re-broadcasting, i.e.
        each node's estimate moved by less than ``tol`` since its last push.
        The reported ``residual`` is the network-wide fixed-point residual
        summed over nodes, so at quiescence it is bounded by roughly
        ``tol · n_nodes`` (each node may sit up to ``tol`` from its local
        fixed point).  :data:`ASYNC_RESIDUAL_SLACK` absorbs the constant
        factors — in-flight messages and per-node estimates drifting while
        neighbors settle — so the criterion is

            residual < ASYNC_RESIDUAL_SLACK · tol · max(1, n_nodes).
        """
        return residual < ASYNC_RESIDUAL_SLACK * tol * max(1, n_nodes)

    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        if normalization != "column":
            raise ValueError(
                "the decentralized protocol implements column normalization; "
                f"got {normalization!r}"
            )
        protocol = AsyncPPRDiffusion(
            topology,
            personalization,
            alpha=alpha,
            tol=tol,
            latency=latency,
            seed=seed,
        )
        outcome = protocol.run(max_events=max_iterations * topology.n_nodes)
        return DiffusionOutcome(
            embeddings=outcome.embeddings,
            method=self.name,
            alpha=alpha,
            iterations=outcome.events,
            residual=outcome.residual,
            converged=self.is_converged(outcome.residual, tol, topology.n_nodes),
            messages=outcome.messages,
            events=outcome.events,
            sim_time=outcome.time,
        )
