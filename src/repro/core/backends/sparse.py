"""Sparse-first backend: pruned CSR diffusion with incremental refresh.

Wraps :class:`repro.gsp.filters.SparsePersonalizedPageRank` (pruned CSR
power iteration) and the multi-column sparse push kernel of
:mod:`repro.gsp.push` behind the :class:`DiffusionBackend` interface.  The
personalization never densifies: the backend takes a ``scipy.sparse``
personalization matrix (``accepts_sparse``), keeps the iterate in CSR form
through every sweep, and returns CSR embeddings in the outcome — memory and
work scale with the diffused mass's support, not with ``n_nodes × dim``,
which is what lets the precompute phase run at 100k+ nodes (see
``benchmarks/test_bench_sparse_scale.py``).

Like ``push``, the backend ``supports_incremental``: after a sparse
personalization change it patches the cached CSR embeddings by pushing only
the delta, with the same degree-normalized ε-truncation as the cold start so
refresh work stays local too.

The pruning threshold ε is a constructor knob; ``method="sparse"`` uses
:data:`~repro.gsp.filters.SPARSE_DEFAULT_EPSILON`, and dispatchers accept a
pre-built instance (``method=SparseDiffusionBackend(epsilon=...)``) for
other settings.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.backends.base import (
    DiffusionBackend,
    DiffusionOutcome,
    register_backend,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import SPARSE_DEFAULT_EPSILON, SparsePersonalizedPageRank
from repro.gsp.normalization import NormalizationKind, transition_matrix
from repro.gsp.push import sparse_push_refresh
from repro.runtime.network import LatencyModel
from repro.utils.rng import RngLike


@register_backend
class SparseDiffusionBackend(DiffusionBackend):
    """Pruned CSR power iteration; embeddings stay sparse end to end."""

    name = "sparse"
    supports_incremental = True
    accepts_sparse = True

    def __init__(
        self,
        epsilon: float = SPARSE_DEFAULT_EPSILON,
        *,
        dtype: np.dtype | type = np.float64,
        n_jobs: int = 1,
    ) -> None:
        """``dtype=float32`` halves cache memory at a bounded accuracy cost
        (overlap@100 ≥ 0.98 vs float64 on the benchmark graphs — see the
        ε-sweep section of ``benchmarks/test_bench_sparse_scale.py``);
        ``n_jobs > 1`` pushes refresh column blocks on a thread pool.
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.epsilon = float(epsilon)
        self.dtype = dtype
        self.n_jobs = int(n_jobs)

    def diffuse(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        operator = transition_matrix(topology, normalization)
        return self.diffuse_operator(
            operator,
            personalization,
            alpha=alpha,
            tol=tol,
            max_iterations=max_iterations,
            seed=seed,
        )

    def diffuse_operator(
        self,
        operator: sp.spmatrix,
        personalization: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        """Pruned CSR power iteration over a pre-built operator.

        The sharded-precompute hook (:mod:`repro.core.shard`): shard
        operators are slices of the globally normalized matrix, handed in
        directly.  ``seed`` is accepted for interface uniformity; the
        pruned power iteration is deterministic and ignores it.
        """
        ppr = SparsePersonalizedPageRank(
            alpha,
            epsilon=self.epsilon,
            tol=tol,
            max_iterations=max_iterations,
            dtype=self.dtype,
        )
        detail = ppr.apply_detailed(operator, personalization)
        return DiffusionOutcome(
            embeddings=detail.signal,
            method=self.name,
            alpha=alpha,
            iterations=detail.iterations,
            residual=detail.residual,
            converged=detail.converged,
        )

    def refresh(
        self,
        topology: CompressedAdjacency,
        embeddings: np.ndarray | sp.spmatrix,
        delta: np.ndarray | sp.spmatrix,
        *,
        alpha: float,
        normalization: NormalizationKind = "column",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
    ) -> DiffusionOutcome:
        operator = transition_matrix(topology, normalization, fmt="csc")
        patched, result = sparse_push_refresh(
            operator,
            embeddings,
            delta,
            alpha=alpha,
            tol=tol,
            epsilon=self.epsilon,
            max_sweeps=max_iterations,
            dtype=self.dtype,
            n_jobs=self.n_jobs,
        )
        return DiffusionOutcome(
            embeddings=patched,
            method=self.name,
            alpha=alpha,
            iterations=result.sweeps,
            residual=result.residual,
            converged=result.converged,
            operations=result.edge_operations,
            residual_l1=result.residual_l1,
            incremental=True,
        )
