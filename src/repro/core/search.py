"""High-level facade: a searchable decentralized network in one object.

Typical use (the full pipeline of paper §IV)::

    net = DiffusionSearchNetwork(graph, dim=300, alpha=0.5)
    net.place_document("doc-1", embedding, node=42)
    net.diffuse()                      # PPR warm-up (Fig. 2 lines 3-6)
    result = net.search(query_embedding, start_node=7, ttl=50)
    result.best                        # best document found by the walk

Dynamic content: the network tracks which nodes' personalization rows
changed since the last warm-up (``place_document``/``remove_document``
mark their node dirty).  With an incremental-capable backend the next
``diffuse(method="push")`` patches the cached embeddings from the sparse
delta instead of recomputing the whole network — work proportional to the
change, exact to within the push tolerance::

    net.place_document("doc-2", other_embedding, node=9)
    outcome = net.diffuse(method="push")   # incremental patch, not a redo
    assert outcome.incremental

Large networks: ``net.diffuse(method="sparse")`` runs the sparse-first
pipeline — personalization assembled from occupied rows only, pruned CSR
power iteration, CSR embedding cache consumed directly by the walk policies
— so precompute memory and time scale with the diffused support rather than
``n_nodes × dim``.  ``net.embeddings`` still returns the dense view (built
lazily on first access); ``net.diffuse(method="sparse")`` after further
placements patches the CSR cache incrementally, like ``push`` does for the
dense one.

Very large networks: ``net.diffuse(method="sharded")`` adds the parallel
axis — the overlay is partitioned community-aware
(:mod:`repro.core.shard`), each shard runs the sparse kernel in a forked
worker pool, and boundary residuals are exchanged until the diffusion is
exact.  The backend ``accepts_sparse`` and ``supports_incremental``, so the
CSR cache, lazy densification, and delta refresh all compose unchanged.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.churn.staleness import StalenessTracker
from repro.core.backends import DiffusionBackend
from repro.core.diffusion import DiffusionOutcome, resolve_backend
from repro.core.engine import (
    ResilienceConfig,
    SearchResult,
    WalkConfig,
    run_query,
)
from repro.core.forwarding import EmbeddingGuidedPolicy, ForwardingPolicy
from repro.core.personalization import (
    PersonalizationWeighting,
    personalization_matrix,
    personalization_vector,
)
from repro.core.protocol import QueryMessage, QueryRoutingNode
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import NormalizationKind
from repro.retrieval.topk import TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import FaultInjector
from repro.runtime.network import LatencyModel, SimNetwork
from repro.utils.rng import RngLike


def _rows_to_csr(
    nodes: np.ndarray, block: np.ndarray, n_nodes: int
) -> sp.csr_matrix:
    """Lift a dense ``(k, dim)`` row block at global row ids into CSR.

    ``O(k × dim)`` regardless of ``n_nodes``; explicit zeros are dropped.
    """
    dim = block.shape[1]
    rows = np.repeat(nodes, dim)
    cols = np.tile(np.arange(dim, dtype=np.int64), nodes.shape[0])
    matrix = sp.csr_matrix(
        (block.ravel(), (rows, cols)), shape=(n_nodes, dim)
    )
    matrix.eliminate_zeros()
    return matrix


def _drop_rows(matrix: sp.csr_matrix, nodes: np.ndarray) -> sp.csr_matrix:
    """Zero out the listed rows of a CSR matrix without densifying."""
    n, dim = matrix.shape
    lens = np.diff(matrix.indptr)
    keep_row = np.ones(n, dtype=bool)
    keep_row[nodes] = False
    keep_entry = np.repeat(keep_row, lens)
    indptr = np.concatenate(([0], np.cumsum(np.where(keep_row, lens, 0))))
    return sp.csr_matrix(
        (matrix.data[keep_entry], matrix.indices[keep_entry], indptr),
        shape=(n, dim),
    )


class DiffusionSearchNetwork:
    """A P2P network with per-node document collections and PPR diffusion.

    Parameters
    ----------
    topology:
        The P2P graph (``networkx.Graph`` or :class:`CompressedAdjacency`);
        nodes are addressed by internal ids ``0..n-1``.
    dim:
        Embedding dimensionality shared by documents and queries.
    alpha:
        PPR teleport probability (paper: 0.1 heavy / 0.5 moderate / 0.9 light
        diffusion).
    weighting:
        Personalization weighting (paper uses ``"sum"``; see
        :mod:`repro.core.personalization` for the ablation variants).
    dtype:
        Precision of the personalization pipeline (``float64`` default).
        ``float32`` halves the memory of the E0 matrices and, combined with
        a float32 backend (``SparseDiffusionBackend(dtype=np.float32)``),
        keeps the whole diffuse-and-cache path in single precision at a
        bounded accuracy cost (overlap@100 ≥ 0.98 on the benchmark graphs).
    """

    def __init__(
        self,
        topology: CompressedAdjacency | nx.Graph,
        dim: int,
        *,
        alpha: float = 0.5,
        normalization: NormalizationKind = "column",
        weighting: PersonalizationWeighting = "sum",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if isinstance(topology, nx.Graph):
            topology = CompressedAdjacency.from_networkx(topology)
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        self.adjacency = topology
        self.dim = int(dim)
        self.alpha = float(alpha)
        self.dtype = dtype
        self.normalization: NormalizationKind = normalization
        self.weighting: PersonalizationWeighting = weighting
        self.stores: dict[int, DocumentStore] = {}
        self._doc_locations: dict[Hashable, int] = {}
        # The raw cache from the last diffusion: a dense array for the
        # standard backends, a scipy CSR matrix for the sparse backend.
        # `.embeddings` densifies lazily (memoized in _embeddings_dense).
        self._embeddings: np.ndarray | sp.spmatrix | None = None
        self._embeddings_dense: np.ndarray | None = None
        self._last_outcome: DiffusionOutcome | None = None
        self._stale = True
        # Incremental-refresh state: the personalization matrix the cached
        # embeddings were diffused from (dense or CSR, matching the backend
        # that produced it), and the nodes whose rows changed since (the
        # sparse delta support set).
        self._diffused_personalization: np.ndarray | sp.spmatrix | None = None
        self._dirty_nodes: set[int] = set()
        self._accumulated_residual = 0.0
        # Coalesced per-node pending L1 mass + push residual: the cheap
        # upper bound on the cached embeddings' error that SLO-driven
        # refresh scheduling acts on (see repro.churn).
        self.staleness = StalenessTracker()

    # ------------------------------------------------------------ documents

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_nodes

    @property
    def n_documents(self) -> int:
        return len(self._doc_locations)

    def place_document(self, doc_id: Hashable, embedding: np.ndarray, node: int) -> None:
        """Store a document at ``node`` (marks the diffusion stale)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if doc_id in self._doc_locations:
            raise ValueError(f"document {doc_id!r} is already placed; remove it first")
        store = self.stores.get(node)
        if store is None:
            store = self.stores[node] = DocumentStore(self.dim)
        store.add(doc_id, embedding)
        self._doc_locations[doc_id] = node
        self._mark_dirty(node)

    def place_documents(
        self, placements: Iterable[tuple[Hashable, np.ndarray, int]]
    ) -> None:
        """Place many ``(doc_id, embedding, node)`` triples."""
        for doc_id, embedding, node in placements:
            self.place_document(doc_id, embedding, node)

    def remove_document(self, doc_id: Hashable) -> None:
        """Remove a document from wherever it is stored."""
        node = self._doc_locations.pop(doc_id)
        self.stores[node].remove(doc_id)
        if len(self.stores[node]) == 0:
            del self.stores[node]
        self._mark_dirty(node)

    def clear_documents(self) -> None:
        """Drop every document (e.g. between experiment iterations)."""
        occupied = list(self.stores)
        # Clear first, mark after: the pending-delta computation inside
        # _mark_dirty reads the *current* store state, which here is empty.
        self.stores.clear()
        self._doc_locations.clear()
        for node in occupied:
            self._mark_dirty(node)
        self._stale = True

    def _mark_dirty(self, node: int) -> None:
        """Record that ``node``'s personalization row changed.

        Alongside the boolean dirty set, the staleness tracker receives the
        node's coalesced pending mass — ``‖current row − diffused row‖₁``,
        overwritten on every mark, so N churn events on one node cost one
        tracker entry and contribute their *net* delta to the bound.
        """
        node = int(node)
        self._dirty_nodes.add(node)
        self._stale = True
        if self._diffused_personalization is not None:
            self.staleness.set_pending(node, self._pending_delta_l1(node))

    def _pending_delta_l1(self, node: int) -> float:
        """L1 distance of ``node``'s personalization row from the baseline."""
        baseline = self._diffused_personalization
        if baseline is None:
            return 0.0
        if sp.issparse(baseline):
            base_row = np.asarray(baseline.getrow(node).todense()).ravel()
        else:
            base_row = baseline[node]
        store = self.stores.get(node)
        if store is None or len(store) == 0:
            return float(np.abs(base_row).sum())
        current = personalization_vector(store.matrix(), self.weighting)
        return float(np.abs(current - base_row).sum())

    def location_of(self, doc_id: Hashable) -> int:
        """Node currently holding ``doc_id``."""
        return self._doc_locations[doc_id]

    def documents_at(self, node: int) -> list[Hashable]:
        """Document ids stored at ``node``."""
        store = self.stores.get(node)
        return store.doc_ids if store else []

    # ------------------------------------------------------------- diffusion

    def personalization(self) -> np.ndarray:
        """The current ``E0`` matrix (one personalization row per node)."""
        matrix = personalization_matrix(
            self.stores, self.n_nodes, self.dim, self.weighting
        )
        return matrix.astype(self.dtype, copy=False)

    def personalization_sparse(self) -> sp.csr_matrix:
        """The current ``E0`` as a CSR matrix, built from occupied rows only.

        Most nodes hold no documents, so their personalization rows are
        zero; this builds ``E0`` with one stored row per document-holding
        node — ``O(holders × dim)`` memory regardless of network size.  The
        entry point of the sparse diffusion pipeline (``method="sparse"``).
        """
        occupied = sorted(
            node for node, store in self.stores.items() if len(store)
        )
        if not occupied:
            return sp.csr_matrix((self.n_nodes, self.dim), dtype=self.dtype)
        block = np.stack(
            [self._personalization_row(node) for node in occupied]
        )
        matrix = _rows_to_csr(
            np.asarray(occupied, dtype=np.int64), block, self.n_nodes
        )
        return matrix

    def _personalization_row(self, node: int) -> np.ndarray:
        """``node``'s current personalization row, in the facade dtype."""
        store = self.stores.get(node)
        if store is None or len(store) == 0:
            return np.zeros(self.dim, dtype=self.dtype)
        row = personalization_vector(store.matrix(), self.weighting)
        return row.astype(self.dtype, copy=False)

    def diffuse(
        self,
        *,
        method: str | DiffusionBackend = "power",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
        incremental: bool | None = None,
    ) -> DiffusionOutcome:
        """Run (or incrementally refresh) the PPR diffusion warm-up.

        ``incremental=None`` (the default) patches the cached embeddings
        from the sparse personalization delta whenever possible — an
        incremental-capable backend (``method="push"``) and a previous
        diffusion to patch — and falls back to a full cold-start run
        otherwise.  ``True`` forces the incremental path (raising when it
        is unavailable); ``False`` forces a full re-diffusion.

        An incremental outcome with ``converged=False`` (the sweep cap hit
        before the delta drained) is returned but *not* committed: the
        cached embeddings, baseline, and staleness are left untouched so a
        retry with a larger budget re-diffuses the full delta.

        With a sparse-capable backend (``method="sparse"``) the whole path
        stays in CSR form: the personalization is assembled from occupied
        rows only, the cached embeddings are a CSR matrix (``.embeddings``
        densifies lazily; ``csr_embeddings`` exposes the raw cache), and
        incremental refreshes patch that CSR cache without densifying.
        """
        backend = resolve_backend(method)
        sparse_mode = backend.accepts_sparse
        can_refresh = (
            backend.supports_incremental
            and self._embeddings is not None
            and self._diffused_personalization is not None
        )
        if incremental is None:
            incremental = can_refresh
        elif incremental and not can_refresh:
            if not backend.supports_incremental:
                raise ValueError(
                    f"diffusion method {backend.name!r} does not support "
                    "incremental refresh; use method='push' or "
                    "method='sparse'"
                )
            raise ValueError(
                "incremental refresh needs a previous diffusion to patch; "
                "run .diffuse() once before requesting incremental=True"
            )

        if incremental:
            # Coalesced dirty-row delta: every place/remove since the last
            # refresh marked its node dirty, so one refresh per scheduling
            # window diffuses the whole window's *net* change in a single
            # sparse push — delta assembly costs O(dirty × dim), never a
            # full E0 rebuild.  Unchanged rows would difference to exact
            # zeros anyway (same floats recomputed), so the dirty-only delta
            # is bit-identical to the historical full-matrix difference.
            # Mutations must go through the facade (place_document /
            # remove_document / clear_documents) for the dirty set to be
            # complete.
            baseline = self._diffused_personalization
            cached = self._embeddings
            dirty = sorted(self._dirty_nodes)
            nodes = np.asarray(dirty, dtype=np.int64)
            block = (
                np.stack([self._personalization_row(v) for v in dirty])
                if dirty
                else np.zeros((0, self.dim), dtype=self.dtype)
            )
            if sparse_mode:
                if not sp.issparse(baseline):
                    baseline = sp.csr_matrix(baseline)
                base_block = np.asarray(baseline[nodes].todense())
                delta = _rows_to_csr(nodes, block - base_block, self.n_nodes)
                # Commit-side baseline: exact row *replacement*, never
                # baseline + delta — floating point ``b + (c − b) ≠ c``
                # would poison every later delta.
                refreshed_baseline = (
                    _drop_rows(baseline, nodes)
                    + _rows_to_csr(nodes, block, self.n_nodes)
                ).tocsr()
                refreshed_baseline.sort_indices()
            else:
                if sp.issparse(baseline):
                    baseline = np.asarray(baseline.todense())
                if sp.issparse(cached):
                    cached = np.asarray(cached.todense())
                delta = np.zeros_like(baseline)
                refreshed_baseline = baseline.copy()
                if dirty:
                    delta[nodes] = block - baseline[nodes]
                    refreshed_baseline[nodes] = block
            outcome = backend.refresh(
                self.adjacency,
                cached,
                delta,
                alpha=self.alpha,
                normalization=self.normalization,
                tol=tol,
                max_iterations=max_iterations,
            )
        else:
            personalization = (
                self.personalization_sparse() if sparse_mode
                else self.personalization()
            )
            outcome = backend.diffuse(
                self.adjacency,
                personalization,
                alpha=self.alpha,
                normalization=self.normalization,
                tol=tol,
                max_iterations=max_iterations,
                latency=latency,
                seed=seed,
            )
        if incremental and not outcome.converged:
            # A truncated patch must not advance the baseline: committing it
            # would mark the lost correction as applied, and no later
            # refresh could ever recover it (the next delta would be zero).
            # Leave every cache untouched — still stale — so a retry
            # re-diffuses the full delta.
            return outcome
        self._embeddings = outcome.embeddings
        self._embeddings_dense = None
        self._last_outcome = outcome
        # Only a converged run may serve as the incremental baseline: a
        # truncated full run carries residual error that a later delta patch
        # could never see, let alone repair.  Without a baseline the next
        # diffuse() falls back to a full run (seed behaviour preserved: the
        # embeddings themselves are still cached and searchable).
        if incremental:
            self._diffused_personalization = refreshed_baseline
        else:
            self._diffused_personalization = (
                personalization if outcome.converged else None
            )
        self._dirty_nodes.clear()
        self._stale = False
        # Each patch leaves up to ~tol of residual behind; a full run resets
        # the baseline.  See :attr:`accumulated_residual`.
        if outcome.incremental:
            self._accumulated_residual += outcome.residual
            self.staleness.record_refresh(outcome.residual_l1, full=False)
        else:
            self._accumulated_residual = outcome.residual
            if outcome.converged:
                self.staleness.record_refresh(outcome.residual_l1, full=True)
            else:
                # No baseline ⇒ the next delta is unknowable; the bound is ∞
                # until a converged full run re-establishes one.
                self.staleness.invalidate()
        return outcome

    @property
    def accumulated_residual(self) -> float:
        """Residual bound accumulated over incremental refreshes.

        Every incremental patch stops once its *delta* residual falls below
        the tolerance, leaving that much error behind on top of whatever the
        base diffusion carried; over a long churn workload the bounds add
        up.  Monitor this and re-baseline with
        ``diffuse(incremental=False)`` when it approaches the score margins
        that matter for routing (it resets on any full diffusion).
        """
        return self._accumulated_residual

    @property
    def embeddings(self) -> np.ndarray:
        """Diffused node embeddings from the last :meth:`diffuse` call (dense).

        May be *stale* if documents changed since; check :attr:`is_stale`.
        (A live network is transiently stale too, until re-diffusion
        propagates the update.)

        After a sparse diffusion the cache is a CSR matrix; this property
        densifies it lazily (memoized until the next diffusion) so dense
        consumers keep working unchanged.  Hot paths that can consume CSR
        rows directly — :meth:`default_policy`, the walk engines — read
        :attr:`csr_embeddings` instead and never trigger the densification.
        """
        if self._embeddings is None:
            raise RuntimeError(
                "no diffusion has been run; call .diffuse() after placing documents"
            )
        if sp.issparse(self._embeddings):
            if self._embeddings_dense is None:
                self._embeddings_dense = np.asarray(self._embeddings.todense())
            return self._embeddings_dense
        return self._embeddings

    @property
    def csr_embeddings(self) -> sp.csr_matrix | None:
        """The CSR embedding cache from the last sparse diffusion.

        ``None`` when the last diffusion used a dense backend; treat the
        returned matrix as read-only.
        """
        return self._embeddings if sp.issparse(self._embeddings) else None

    @property
    def is_stale(self) -> bool:
        """True when documents changed after the last diffusion."""
        return self._stale

    @property
    def dirty_nodes(self) -> frozenset[int]:
        """Nodes whose personalization changed since the last diffusion.

        This is the support set of the sparse delta an incremental refresh
        would diffuse; empty right after :meth:`diffuse`.
        """
        return frozenset(self._dirty_nodes)

    def diffused_signal_mass(self) -> float:
        """L1 mass of the personalization the cached embeddings came from.

        The "how much signal does a full run diffuse" figure a
        :class:`repro.churn.RefreshCostModel` needs to convert one observed
        full-run cost into an incremental edge-ops-per-unit-mass rate.
        0.0 while no converged baseline exists.
        """
        base = self._diffused_personalization
        if base is None:
            return 0.0
        if sp.issparse(base):
            return float(np.abs(base.data).sum()) if base.nnz else 0.0
        return float(np.abs(base).sum())

    @property
    def dirty_mass(self) -> float:
        """Total pending personalization change, in L1 mass.

        The sum over dirty nodes of ``‖current row − diffused row‖₁``,
        coalesced per node (repeated churn on one node contributes its net
        delta once).  This is the quantity the refresh cost model prices an
        incremental refresh by, and the churn half of
        :meth:`staleness_bound`.
        """
        return self.staleness.dirty_mass

    def staleness_bound(self) -> float:
        """Upper bound on the cached embeddings' entrywise L1 error.

        ``dirty_mass + accumulated push residual``: with column
        normalization the PPR filter satisfies ``‖H‖₁ ≤ 1``, so un-diffused
        personalization mass can only shrink on its way into the cached
        embeddings (see :class:`repro.churn.StalenessTracker` for the
        argument).  ``inf`` while no converged diffusion baseline exists.
        O(1); computing the true error costs a full re-diffusion — the whole
        point is that SLO scheduling can consult this every tick.
        """
        return self.staleness.bound()

    @property
    def last_diffusion(self) -> DiffusionOutcome | None:
        return self._last_outcome

    # ---------------------------------------------------------------- search

    def default_policy(self) -> EmbeddingGuidedPolicy:
        """The paper's forwarding policy over the cached embeddings.

        A CSR cache (sparse diffusion) is handed to the policy as-is —
        walks score candidate rows straight from the sparse matrix, so the
        dense ``(n_nodes, dim)`` view is never materialized; the dense
        branch reuses :attr:`embeddings` (including its no-diffusion guard).
        """
        csr = self.csr_embeddings
        return EmbeddingGuidedPolicy(csr if csr is not None else self.embeddings)

    def search(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        fanout: int = 1,
        k: int = 1,
        policy: ForwardingPolicy | None = None,
        query_id: Hashable = None,
        seed: RngLike = None,
        faults: FaultInjector | None = None,
        resilience: ResilienceConfig | None = None,
        hop_budget: int | None = None,
        quarantine: Iterable[int] | None = None,
    ) -> SearchResult:
        """Execute a query with the fast walk engine.

        ``faults``/``resilience`` run the failure-resilient protocol (see
        :func:`repro.core.engine.run_query`): detected-dead peers are
        rerouted around, dropped messages retried, and a query whose
        walkers all die returns best-so-far results with
        ``result.degraded`` set.  Without an injector the walk is
        bit-identical to the fault-free engine.  ``hop_budget`` caps the
        walk horizon (deadline serving; a truncated walk returns partials
        with ``deadline_hit`` set) and ``quarantine`` routes around a
        circuit breaker's open peers.
        """
        config = WalkConfig(ttl=ttl, fanout=fanout, k=k)
        return run_query(
            self.adjacency,
            self.stores,
            policy or self.default_policy(),
            query_embedding,
            start_node,
            config,
            query_id=query_id,
            seed=seed,
            faults=faults,
            resilience=resilience,
            hop_budget=hop_budget,
            quarantine=quarantine,
        )

    def search_on_runtime(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        k: int = 1,
        query_id: Hashable = "query",
        latency: LatencyModel | None = None,
        seed: RngLike = None,
        max_events: int | None = None,
        faults: FaultInjector | None = None,
    ) -> SearchResult:
        """Execute the same query through the event-driven message protocol.

        Builds a :class:`SimNetwork` of :class:`QueryRoutingNode` actors
        (each holding only its own store and its neighbors' diffused
        embeddings), runs to quiescence including response backtracking, and
        reconstructs a :class:`SearchResult`.  Single-walk (fanout 1), as in
        the paper's evaluation.

        With a ``faults`` injector installed, messages can be dropped,
        duplicated, or delayed and peers can crash mid-walk per the
        injector's plan.  A walk that dies in flight (the query or a
        backtracking response lost) would leave the source waiting forever;
        instead the result is reconstructed from the forwarding trace as
        best-so-far partials with ``degraded=True`` — the same graceful
        degradation contract as the fast engine.
        """
        embeddings = self.embeddings
        network = SimNetwork(self.adjacency, latency=latency, seed=seed)
        if faults is not None:
            faults.install(network)
        trace: list[tuple[Hashable, int]] = []
        dim = self.dim
        for node_id in range(self.n_nodes):
            neighbor_embeddings = {
                int(v): embeddings[int(v)] for v in self.adjacency.neighbors(node_id)
            }
            store = self.stores.get(node_id) or DocumentStore(dim)
            network.attach(
                QueryRoutingNode(
                    node_id, store, neighbor_embeddings, trace=trace
                )
            )
        network.start()
        if faults is not None and network.is_down(start_node):
            return SearchResult(
                query_id=query_id,
                start_node=int(start_node),
                tracker=TopKTracker(k),
                visits=[],
                degraded=True,
                walkers_lost=1,
            )
        source = network.actor(start_node)
        assert isinstance(source, QueryRoutingNode)
        source.initiate(
            QueryMessage(query_id, np.asarray(query_embedding, float), ttl, k)
        )
        network.run(max_events=max_events)

        completed = query_id in source.completed
        items = source.completed.get(query_id, ())
        if not completed and faults is not None:
            # The walk (or its backtracking response) died in flight.
            # Rebuild best-so-far from the nodes the query provably reached.
            tracker = TopKTracker(k)
            for _, node in trace:
                store = self.stores.get(node)
                if store is None:
                    continue
                for doc_id, score in store.top_k(query_embedding, k):
                    tracker.offer(doc_id, score, node)
            items = tuple(tracker.items())
        tracker = TopKTracker.from_items(k, items)
        result = SearchResult(
            query_id=query_id,
            start_node=int(start_node),
            tracker=tracker,
            visits=[(hop, node) for hop, (_, node) in enumerate(trace)],
            messages=network.stats.messages,
            degraded=not completed and faults is not None,
            walkers_lost=int(not completed and faults is not None),
        )
        # Reconstruct first-discovery hops from the visit order.
        for hop, (_, node) in enumerate(trace):
            store = self.stores.get(node)
            if store is None:
                continue
            for doc_id, _ in store.top_k(query_embedding, k):
                result.discovered_at.setdefault(doc_id, hop)
        return result
