"""High-level facade: a searchable decentralized network in one object.

Typical use (the full pipeline of paper §IV)::

    net = DiffusionSearchNetwork(graph, dim=300, alpha=0.5)
    net.place_document("doc-1", embedding, node=42)
    net.diffuse()                      # PPR warm-up (Fig. 2 lines 3-6)
    result = net.search(query_embedding, start_node=7, ttl=50)
    result.best                        # best document found by the walk
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx
import numpy as np

from repro.core.diffusion import DiffusionOutcome, diffuse_embeddings
from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import EmbeddingGuidedPolicy, ForwardingPolicy
from repro.core.personalization import (
    PersonalizationWeighting,
    personalization_matrix,
)
from repro.core.protocol import QueryMessage, QueryRoutingNode
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import NormalizationKind
from repro.retrieval.topk import TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.network import LatencyModel, SimNetwork
from repro.utils.rng import RngLike


class DiffusionSearchNetwork:
    """A P2P network with per-node document collections and PPR diffusion.

    Parameters
    ----------
    topology:
        The P2P graph (``networkx.Graph`` or :class:`CompressedAdjacency`);
        nodes are addressed by internal ids ``0..n-1``.
    dim:
        Embedding dimensionality shared by documents and queries.
    alpha:
        PPR teleport probability (paper: 0.1 heavy / 0.5 moderate / 0.9 light
        diffusion).
    weighting:
        Personalization weighting (paper uses ``"sum"``; see
        :mod:`repro.core.personalization` for the ablation variants).
    """

    def __init__(
        self,
        topology: CompressedAdjacency | nx.Graph,
        dim: int,
        *,
        alpha: float = 0.5,
        normalization: NormalizationKind = "column",
        weighting: PersonalizationWeighting = "sum",
    ) -> None:
        if isinstance(topology, nx.Graph):
            topology = CompressedAdjacency.from_networkx(topology)
        self.adjacency = topology
        self.dim = int(dim)
        self.alpha = float(alpha)
        self.normalization: NormalizationKind = normalization
        self.weighting: PersonalizationWeighting = weighting
        self.stores: dict[int, DocumentStore] = {}
        self._doc_locations: dict[Hashable, int] = {}
        self._embeddings: np.ndarray | None = None
        self._last_outcome: DiffusionOutcome | None = None
        self._stale = True

    # ------------------------------------------------------------ documents

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_nodes

    @property
    def n_documents(self) -> int:
        return len(self._doc_locations)

    def place_document(self, doc_id: Hashable, embedding: np.ndarray, node: int) -> None:
        """Store a document at ``node`` (marks the diffusion stale)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if doc_id in self._doc_locations:
            raise ValueError(f"document {doc_id!r} is already placed; remove it first")
        store = self.stores.get(node)
        if store is None:
            store = self.stores[node] = DocumentStore(self.dim)
        store.add(doc_id, embedding)
        self._doc_locations[doc_id] = node
        self._stale = True

    def place_documents(
        self, placements: Iterable[tuple[Hashable, np.ndarray, int]]
    ) -> None:
        """Place many ``(doc_id, embedding, node)`` triples."""
        for doc_id, embedding, node in placements:
            self.place_document(doc_id, embedding, node)

    def remove_document(self, doc_id: Hashable) -> None:
        """Remove a document from wherever it is stored."""
        node = self._doc_locations.pop(doc_id)
        self.stores[node].remove(doc_id)
        if len(self.stores[node]) == 0:
            del self.stores[node]
        self._stale = True

    def clear_documents(self) -> None:
        """Drop every document (e.g. between experiment iterations)."""
        self.stores.clear()
        self._doc_locations.clear()
        self._stale = True

    def location_of(self, doc_id: Hashable) -> int:
        """Node currently holding ``doc_id``."""
        return self._doc_locations[doc_id]

    def documents_at(self, node: int) -> list[Hashable]:
        """Document ids stored at ``node``."""
        store = self.stores.get(node)
        return store.doc_ids if store else []

    # ------------------------------------------------------------- diffusion

    def personalization(self) -> np.ndarray:
        """The current ``E0`` matrix (one personalization row per node)."""
        return personalization_matrix(
            self.stores, self.n_nodes, self.dim, self.weighting
        )

    def diffuse(
        self,
        *,
        method: str = "power",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
    ) -> DiffusionOutcome:
        """Run the PPR diffusion warm-up and cache the node embeddings."""
        outcome = diffuse_embeddings(
            self.adjacency,
            self.personalization(),
            alpha=self.alpha,
            method=method,
            normalization=self.normalization,
            tol=tol,
            max_iterations=max_iterations,
            latency=latency,
            seed=seed,
        )
        self._embeddings = outcome.embeddings
        self._last_outcome = outcome
        self._stale = False
        return outcome

    @property
    def embeddings(self) -> np.ndarray:
        """Diffused node embeddings from the last :meth:`diffuse` call.

        May be *stale* if documents changed since; check :attr:`is_stale`.
        (A live network is transiently stale too, until re-diffusion
        propagates the update.)
        """
        if self._embeddings is None:
            raise RuntimeError(
                "no diffusion has been run; call .diffuse() after placing documents"
            )
        return self._embeddings

    @property
    def is_stale(self) -> bool:
        """True when documents changed after the last diffusion."""
        return self._stale

    @property
    def last_diffusion(self) -> DiffusionOutcome | None:
        return self._last_outcome

    # ---------------------------------------------------------------- search

    def default_policy(self) -> EmbeddingGuidedPolicy:
        """The paper's forwarding policy over the cached embeddings."""
        return EmbeddingGuidedPolicy(self.embeddings)

    def search(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        fanout: int = 1,
        k: int = 1,
        policy: ForwardingPolicy | None = None,
        query_id: Hashable = None,
        seed: RngLike = None,
    ) -> SearchResult:
        """Execute a query with the fast walk engine."""
        config = WalkConfig(ttl=ttl, fanout=fanout, k=k)
        return run_query(
            self.adjacency,
            self.stores,
            policy or self.default_policy(),
            query_embedding,
            start_node,
            config,
            query_id=query_id,
            seed=seed,
        )

    def search_on_runtime(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        k: int = 1,
        query_id: Hashable = "query",
        latency: LatencyModel | None = None,
        seed: RngLike = None,
        max_events: int | None = None,
    ) -> SearchResult:
        """Execute the same query through the event-driven message protocol.

        Builds a :class:`SimNetwork` of :class:`QueryRoutingNode` actors
        (each holding only its own store and its neighbors' diffused
        embeddings), runs to quiescence including response backtracking, and
        reconstructs a :class:`SearchResult`.  Single-walk (fanout 1), as in
        the paper's evaluation.
        """
        embeddings = self.embeddings
        network = SimNetwork(self.adjacency, latency=latency, seed=seed)
        trace: list[tuple[Hashable, int]] = []
        dim = self.dim
        for node_id in range(self.n_nodes):
            neighbor_embeddings = {
                int(v): embeddings[int(v)] for v in self.adjacency.neighbors(node_id)
            }
            store = self.stores.get(node_id) or DocumentStore(dim)
            network.attach(
                QueryRoutingNode(
                    node_id, store, neighbor_embeddings, trace=trace
                )
            )
        network.start()
        source = network.actor(start_node)
        assert isinstance(source, QueryRoutingNode)
        source.initiate(
            QueryMessage(query_id, np.asarray(query_embedding, float), ttl, k)
        )
        network.run(max_events=max_events)

        items = source.completed.get(query_id, ())
        tracker = TopKTracker.from_items(k, items)
        result = SearchResult(
            query_id=query_id,
            start_node=int(start_node),
            tracker=tracker,
            visits=[(hop, node) for hop, (_, node) in enumerate(trace)],
            messages=network.stats.messages,
        )
        # Reconstruct first-discovery hops from the visit order.
        for hop, (_, node) in enumerate(trace):
            store = self.stores.get(node)
            if store is None:
                continue
            for doc_id, _ in store.top_k(query_embedding, k):
                result.discovered_at.setdefault(doc_id, hop)
        return result
