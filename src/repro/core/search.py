"""High-level facade: a searchable decentralized network in one object.

Typical use (the full pipeline of paper §IV)::

    net = DiffusionSearchNetwork(graph, dim=300, alpha=0.5)
    net.place_document("doc-1", embedding, node=42)
    net.diffuse()                      # PPR warm-up (Fig. 2 lines 3-6)
    result = net.search(query_embedding, start_node=7, ttl=50)
    result.best                        # best document found by the walk

Dynamic content: the network tracks which nodes' personalization rows
changed since the last warm-up (``place_document``/``remove_document``
mark their node dirty).  With an incremental-capable backend the next
``diffuse(method="push")`` patches the cached embeddings from the sparse
delta instead of recomputing the whole network — work proportional to the
change, exact to within the push tolerance::

    net.place_document("doc-2", other_embedding, node=9)
    outcome = net.diffuse(method="push")   # incremental patch, not a redo
    assert outcome.incremental
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import networkx as nx
import numpy as np

from repro.core.backends import get_backend
from repro.core.diffusion import DiffusionOutcome
from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import EmbeddingGuidedPolicy, ForwardingPolicy
from repro.core.personalization import (
    PersonalizationWeighting,
    personalization_matrix,
)
from repro.core.protocol import QueryMessage, QueryRoutingNode
from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import NormalizationKind
from repro.retrieval.topk import TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.network import LatencyModel, SimNetwork
from repro.utils.rng import RngLike


class DiffusionSearchNetwork:
    """A P2P network with per-node document collections and PPR diffusion.

    Parameters
    ----------
    topology:
        The P2P graph (``networkx.Graph`` or :class:`CompressedAdjacency`);
        nodes are addressed by internal ids ``0..n-1``.
    dim:
        Embedding dimensionality shared by documents and queries.
    alpha:
        PPR teleport probability (paper: 0.1 heavy / 0.5 moderate / 0.9 light
        diffusion).
    weighting:
        Personalization weighting (paper uses ``"sum"``; see
        :mod:`repro.core.personalization` for the ablation variants).
    """

    def __init__(
        self,
        topology: CompressedAdjacency | nx.Graph,
        dim: int,
        *,
        alpha: float = 0.5,
        normalization: NormalizationKind = "column",
        weighting: PersonalizationWeighting = "sum",
    ) -> None:
        if isinstance(topology, nx.Graph):
            topology = CompressedAdjacency.from_networkx(topology)
        self.adjacency = topology
        self.dim = int(dim)
        self.alpha = float(alpha)
        self.normalization: NormalizationKind = normalization
        self.weighting: PersonalizationWeighting = weighting
        self.stores: dict[int, DocumentStore] = {}
        self._doc_locations: dict[Hashable, int] = {}
        self._embeddings: np.ndarray | None = None
        self._last_outcome: DiffusionOutcome | None = None
        self._stale = True
        # Incremental-refresh state: the personalization matrix the cached
        # embeddings were diffused from, and the nodes whose rows changed
        # since (the sparse delta support set).
        self._diffused_personalization: np.ndarray | None = None
        self._dirty_nodes: set[int] = set()
        self._accumulated_residual = 0.0

    # ------------------------------------------------------------ documents

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_nodes

    @property
    def n_documents(self) -> int:
        return len(self._doc_locations)

    def place_document(self, doc_id: Hashable, embedding: np.ndarray, node: int) -> None:
        """Store a document at ``node`` (marks the diffusion stale)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if doc_id in self._doc_locations:
            raise ValueError(f"document {doc_id!r} is already placed; remove it first")
        store = self.stores.get(node)
        if store is None:
            store = self.stores[node] = DocumentStore(self.dim)
        store.add(doc_id, embedding)
        self._doc_locations[doc_id] = node
        self._mark_dirty(node)

    def place_documents(
        self, placements: Iterable[tuple[Hashable, np.ndarray, int]]
    ) -> None:
        """Place many ``(doc_id, embedding, node)`` triples."""
        for doc_id, embedding, node in placements:
            self.place_document(doc_id, embedding, node)

    def remove_document(self, doc_id: Hashable) -> None:
        """Remove a document from wherever it is stored."""
        node = self._doc_locations.pop(doc_id)
        self.stores[node].remove(doc_id)
        if len(self.stores[node]) == 0:
            del self.stores[node]
        self._mark_dirty(node)

    def clear_documents(self) -> None:
        """Drop every document (e.g. between experiment iterations)."""
        for node in list(self.stores):
            self._mark_dirty(node)
        self.stores.clear()
        self._doc_locations.clear()
        self._stale = True

    def _mark_dirty(self, node: int) -> None:
        """Record that ``node``'s personalization row changed."""
        self._dirty_nodes.add(int(node))
        self._stale = True

    def location_of(self, doc_id: Hashable) -> int:
        """Node currently holding ``doc_id``."""
        return self._doc_locations[doc_id]

    def documents_at(self, node: int) -> list[Hashable]:
        """Document ids stored at ``node``."""
        store = self.stores.get(node)
        return store.doc_ids if store else []

    # ------------------------------------------------------------- diffusion

    def personalization(self) -> np.ndarray:
        """The current ``E0`` matrix (one personalization row per node)."""
        return personalization_matrix(
            self.stores, self.n_nodes, self.dim, self.weighting
        )

    def diffuse(
        self,
        *,
        method: str = "power",
        tol: float = 1e-8,
        max_iterations: int = 10_000,
        latency: LatencyModel | None = None,
        seed: RngLike = None,
        incremental: bool | None = None,
    ) -> DiffusionOutcome:
        """Run (or incrementally refresh) the PPR diffusion warm-up.

        ``incremental=None`` (the default) patches the cached embeddings
        from the sparse personalization delta whenever possible — an
        incremental-capable backend (``method="push"``) and a previous
        diffusion to patch — and falls back to a full cold-start run
        otherwise.  ``True`` forces the incremental path (raising when it
        is unavailable); ``False`` forces a full re-diffusion.

        An incremental outcome with ``converged=False`` (the sweep cap hit
        before the delta drained) is returned but *not* committed: the
        cached embeddings, baseline, and staleness are left untouched so a
        retry with a larger budget re-diffuses the full delta.
        """
        backend = get_backend(method)
        can_refresh = (
            backend.supports_incremental
            and self._embeddings is not None
            and self._diffused_personalization is not None
        )
        if incremental is None:
            incremental = can_refresh
        elif incremental and not can_refresh:
            if not backend.supports_incremental:
                raise ValueError(
                    f"diffusion method {method!r} does not support "
                    "incremental refresh; use method='push'"
                )
            raise ValueError(
                "incremental refresh needs a previous diffusion to patch; "
                "run .diffuse() once before requesting incremental=True"
            )

        personalization = self.personalization()
        if incremental:
            # Full-matrix difference rather than just the dirty-marked rows:
            # it costs the same (the current matrix is already in hand) and
            # stays correct even when stores were mutated behind the
            # facade's back.  Unchanged rows are zero and cost nothing to
            # push; `dirty_nodes` remains the introspection view.
            delta = personalization - self._diffused_personalization
            outcome = backend.refresh(
                self.adjacency,
                self._embeddings,
                delta,
                alpha=self.alpha,
                normalization=self.normalization,
                tol=tol,
                max_iterations=max_iterations,
            )
        else:
            outcome = backend.diffuse(
                self.adjacency,
                personalization,
                alpha=self.alpha,
                normalization=self.normalization,
                tol=tol,
                max_iterations=max_iterations,
                latency=latency,
                seed=seed,
            )
        if incremental and not outcome.converged:
            # A truncated patch must not advance the baseline: committing it
            # would mark the lost correction as applied, and no later
            # refresh could ever recover it (the next delta would be zero).
            # Leave every cache untouched — still stale — so a retry
            # re-diffuses the full delta.
            return outcome
        self._embeddings = outcome.embeddings
        self._last_outcome = outcome
        # Only a converged run may serve as the incremental baseline: a
        # truncated full run carries residual error that a later delta patch
        # could never see, let alone repair.  Without a baseline the next
        # diffuse() falls back to a full run (seed behaviour preserved: the
        # embeddings themselves are still cached and searchable).
        self._diffused_personalization = (
            personalization if outcome.converged else None
        )
        self._dirty_nodes.clear()
        self._stale = False
        # Each patch leaves up to ~tol of residual behind; a full run resets
        # the baseline.  See :attr:`accumulated_residual`.
        if outcome.incremental:
            self._accumulated_residual += outcome.residual
        else:
            self._accumulated_residual = outcome.residual
        return outcome

    @property
    def accumulated_residual(self) -> float:
        """Residual bound accumulated over incremental refreshes.

        Every incremental patch stops once its *delta* residual falls below
        the tolerance, leaving that much error behind on top of whatever the
        base diffusion carried; over a long churn workload the bounds add
        up.  Monitor this and re-baseline with
        ``diffuse(incremental=False)`` when it approaches the score margins
        that matter for routing (it resets on any full diffusion).
        """
        return self._accumulated_residual

    @property
    def embeddings(self) -> np.ndarray:
        """Diffused node embeddings from the last :meth:`diffuse` call.

        May be *stale* if documents changed since; check :attr:`is_stale`.
        (A live network is transiently stale too, until re-diffusion
        propagates the update.)
        """
        if self._embeddings is None:
            raise RuntimeError(
                "no diffusion has been run; call .diffuse() after placing documents"
            )
        return self._embeddings

    @property
    def is_stale(self) -> bool:
        """True when documents changed after the last diffusion."""
        return self._stale

    @property
    def dirty_nodes(self) -> frozenset[int]:
        """Nodes whose personalization changed since the last diffusion.

        This is the support set of the sparse delta an incremental refresh
        would diffuse; empty right after :meth:`diffuse`.
        """
        return frozenset(self._dirty_nodes)

    @property
    def last_diffusion(self) -> DiffusionOutcome | None:
        return self._last_outcome

    # ---------------------------------------------------------------- search

    def default_policy(self) -> EmbeddingGuidedPolicy:
        """The paper's forwarding policy over the cached embeddings."""
        return EmbeddingGuidedPolicy(self.embeddings)

    def search(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        fanout: int = 1,
        k: int = 1,
        policy: ForwardingPolicy | None = None,
        query_id: Hashable = None,
        seed: RngLike = None,
    ) -> SearchResult:
        """Execute a query with the fast walk engine."""
        config = WalkConfig(ttl=ttl, fanout=fanout, k=k)
        return run_query(
            self.adjacency,
            self.stores,
            policy or self.default_policy(),
            query_embedding,
            start_node,
            config,
            query_id=query_id,
            seed=seed,
        )

    def search_on_runtime(
        self,
        query_embedding: np.ndarray,
        start_node: int,
        *,
        ttl: int = 50,
        k: int = 1,
        query_id: Hashable = "query",
        latency: LatencyModel | None = None,
        seed: RngLike = None,
        max_events: int | None = None,
    ) -> SearchResult:
        """Execute the same query through the event-driven message protocol.

        Builds a :class:`SimNetwork` of :class:`QueryRoutingNode` actors
        (each holding only its own store and its neighbors' diffused
        embeddings), runs to quiescence including response backtracking, and
        reconstructs a :class:`SearchResult`.  Single-walk (fanout 1), as in
        the paper's evaluation.
        """
        embeddings = self.embeddings
        network = SimNetwork(self.adjacency, latency=latency, seed=seed)
        trace: list[tuple[Hashable, int]] = []
        dim = self.dim
        for node_id in range(self.n_nodes):
            neighbor_embeddings = {
                int(v): embeddings[int(v)] for v in self.adjacency.neighbors(node_id)
            }
            store = self.stores.get(node_id) or DocumentStore(dim)
            network.attach(
                QueryRoutingNode(
                    node_id, store, neighbor_embeddings, trace=trace
                )
            )
        network.start()
        source = network.actor(start_node)
        assert isinstance(source, QueryRoutingNode)
        source.initiate(
            QueryMessage(query_id, np.asarray(query_embedding, float), ttl, k)
        )
        network.run(max_events=max_events)

        items = source.completed.get(query_id, ())
        tracker = TopKTracker.from_items(k, items)
        result = SearchResult(
            query_id=query_id,
            start_node=int(start_node),
            tracker=tracker,
            visits=[(hop, node) for hop, (_, node) in enumerate(trace)],
            messages=network.stats.messages,
        )
        # Reconstruct first-discovery hops from the visit order.
        for hop, (_, node) in enumerate(trace):
            store = self.stores.get(node)
            if store is None:
                continue
            for doc_id, _ in store.top_k(query_embedding, k):
                result.discovered_at.setdefault(doc_id, hop)
        return result
