"""The paper's primary contribution: diffusion-based decentralized search.

Pipeline (paper §IV): nodes summarize their local documents into
personalization vectors (:mod:`repro.core.personalization`), diffuse them over
the P2P graph with a PPR graph filter (:mod:`repro.core.diffusion`), and use
the diffused neighbor embeddings to forward queries as biased random walks
(:mod:`repro.core.forwarding`, :mod:`repro.core.engine`).

:class:`repro.core.search.DiffusionSearchNetwork` is the high-level entry
point tying the stages together.
"""

from repro.core.personalization import (
    PersonalizationWeighting,
    personalization_vector,
    personalization_matrix,
)
from repro.core.backends import (
    DiffusionBackend,
    PushDiffusionBackend,
    ShardedDiffusionBackend,
    SparseDiffusionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.shard import (
    ShardPlan,
    ShardedRunReport,
    build_shard_plan,
    sharded_diffuse,
)
from repro.core.diffusion import (
    DiffusionOutcome,
    diffuse_embeddings,
    refresh_embeddings,
)
from repro.core.forwarding import (
    DegreeBiasedPolicy,
    EmbeddingGuidedPolicy,
    ForwardingPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.core.engine import (
    ResilienceConfig,
    SearchResult,
    WalkConfig,
    run_query,
)
from repro.core.batch import run_queries
from repro.core.aggregation import (
    ChannelHasher,
    MaxChannelPolicy,
    channel_personalization,
    channel_relevance_signals,
)
from repro.core.protocol import QueryMessage, QueryResponse, QueryRoutingNode
from repro.core.search import DiffusionSearchNetwork

__all__ = [
    "PersonalizationWeighting",
    "personalization_vector",
    "personalization_matrix",
    "DiffusionOutcome",
    "diffuse_embeddings",
    "refresh_embeddings",
    "DiffusionBackend",
    "PushDiffusionBackend",
    "ShardedDiffusionBackend",
    "SparseDiffusionBackend",
    "ShardPlan",
    "ShardedRunReport",
    "build_shard_plan",
    "sharded_diffuse",
    "available_backends",
    "get_backend",
    "register_backend",
    "ForwardingPolicy",
    "EmbeddingGuidedPolicy",
    "PrecomputedScorePolicy",
    "RandomWalkPolicy",
    "DegreeBiasedPolicy",
    "WalkConfig",
    "ResilienceConfig",
    "SearchResult",
    "run_query",
    "run_queries",
    "ChannelHasher",
    "MaxChannelPolicy",
    "channel_personalization",
    "channel_relevance_signals",
    "QueryMessage",
    "QueryResponse",
    "QueryRoutingNode",
    "DiffusionSearchNetwork",
]
