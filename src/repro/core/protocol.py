"""Event-driven query routing: the message-level protocol of Fig. 1.

:class:`QueryRoutingNode` is the decentralized execution of the walk engine:
queries are relayed recursively node-to-node, each node keeps per-query
memory of the neighbors it interacted with (privacy: the message itself never
carries the visited set), and on TTL expiry a response message backtracks
along the reverse path to the querying node.

Backtracking uses a per-(query, node) LIFO stack of upstream hops, so walks
that revisit a node still unwind correctly (the response retraces the exact
forward path in reverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from repro.retrieval.scoring import top_k_indices
from repro.retrieval.topk import ScoredDocument, TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.node import SimNode


@dataclass(frozen=True)
class QueryMessage:
    """A forwarded query: embedding, TTL budget, and the running top-k."""

    query_id: Hashable
    embedding: np.ndarray
    ttl: int
    k: int
    items: tuple[ScoredDocument, ...] = ()

    def size_bytes(self) -> float:
        return 8.0 * np.asarray(self.embedding).size + 24.0 * len(self.items) + 32.0


@dataclass(frozen=True)
class QueryResponse:
    """The expired query's results, backtracking toward the source."""

    query_id: Hashable
    items: tuple[ScoredDocument, ...]

    def size_bytes(self) -> float:
        return 24.0 * len(self.items) + 16.0


class QueryRoutingNode(SimNode):
    """A node executing local retrieval plus Fig. 1 forwarding.

    Parameters
    ----------
    store:
        The node's local document collection.
    neighbor_embeddings:
        Diffused embeddings of the node's one-hop neighbors, as collected
        during the diffusion warm-up (paper §IV-B keeps exactly this state).
        Missing neighbors score as zero vectors.
    """

    def __init__(
        self,
        node_id: int,
        store: DocumentStore,
        neighbor_embeddings: dict[int, np.ndarray] | None = None,
        *,
        trace: list | None = None,
    ) -> None:
        super().__init__(node_id)
        self.store = store
        self.neighbor_embeddings = {
            int(k): np.asarray(v, dtype=np.float64)
            for k, v in (neighbor_embeddings or {}).items()
        }
        # per-query state
        self._memory: dict[Hashable, set[int]] = {}
        self._upstream: dict[Hashable, list[int | None]] = {}
        self.completed: dict[Hashable, tuple[ScoredDocument, ...]] = {}
        self.trace = trace

    # ---------------------------------------------------------------- public

    def initiate(self, message: QueryMessage) -> None:
        """Start a query at this node (the querying peer of §III-B)."""
        self._process(None, message)

    def update_neighbor_embedding(self, neighbor: int, embedding: np.ndarray) -> None:
        """Refresh a stored neighbor embedding (diffusion keeps these current)."""
        self.neighbor_embeddings[int(neighbor)] = np.asarray(
            embedding, dtype=np.float64
        )

    # --------------------------------------------------------------- routing

    def on_message(self, src: int, message: Any) -> None:
        if isinstance(message, QueryMessage):
            self._process(src, message)
        elif isinstance(message, QueryResponse):
            self._backtrack(message)

    def _process(self, src: int | None, message: QueryMessage) -> None:
        query_id = message.query_id
        memory = self._memory.setdefault(query_id, set())
        if src is not None:
            memory.add(src)
        if self.trace is not None:
            self.trace.append((query_id, self.node_id))

        # Fig. 1 step 2: evaluate on local documents.
        tracker = TopKTracker.from_items(message.k, message.items)
        for doc_id, score in self.store.top_k(message.embedding, message.k):
            tracker.offer(doc_id, score, self.node_id)
        items = tuple(tracker.items())

        # Fig. 1 step 3: decrement TTL.
        ttl = message.ttl - 1
        neighbors = self.neighbors()
        if ttl <= 0 or not neighbors:
            # Fig. 1 steps 4b/5b: discard and notify the source by backtracking.
            self._respond(src, QueryResponse(query_id, items))
            return

        # Fig. 1 steps 4a/5a: score unvisited neighbors, forward to the best.
        candidates = np.asarray(
            [n for n in neighbors if n not in memory], dtype=np.int64
        )
        if candidates.size == 0:
            # Footnote 9: all neighbors already involved — consider them all.
            candidates = np.asarray(neighbors, dtype=np.int64)
        dim = np.asarray(message.embedding).shape[0]
        scores = np.asarray(
            [
                float(
                    message.embedding
                    @ self.neighbor_embeddings.get(int(c), np.zeros(dim))
                )
                for c in candidates
            ]
        )
        target = int(candidates[top_k_indices(scores, 1)[0]])
        memory.add(target)
        self._upstream.setdefault(query_id, []).append(src)
        self.send(
            target,
            QueryMessage(query_id, message.embedding, ttl, message.k, items),
        )

    def _respond(self, src: int | None, response: QueryResponse) -> None:
        if src is None:
            self.completed[response.query_id] = response.items
        else:
            self.send(src, response)

    def _backtrack(self, response: QueryResponse) -> None:
        stack = self._upstream.get(response.query_id)
        if not stack:
            # No pending forward: we are the source (or state was cleaned up).
            self.completed[response.query_id] = response.items
            return
        upstream = stack.pop()
        self._respond(upstream, response)
