"""Graph filters: Personalized PageRank, heat kernel, arbitrary polynomials.

The PPR filter implements eq. (6) of the paper,
``E = a (I − (1−a) A)^{-1} E0``, either by power iteration of eq. (7) (the
synchronous counterpart of the decentralized diffusion) or by a sparse direct
solve (ground truth for tests and small graphs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import exp, lgamma, log

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils import check_positive, check_probability


@dataclass(frozen=True)
class DiffusionResult:
    """Outcome of a filter application with convergence diagnostics."""

    signal: np.ndarray
    iterations: int
    residual: float
    converged: bool


class GraphFilter(ABC):
    """A graph filter maps an input signal to a diffused signal.

    Signals are arrays of shape ``(n_nodes,)`` or ``(n_nodes, dim)``; the
    operator is a normalized adjacency (see
    :func:`repro.gsp.normalization.transition_matrix`).
    """

    @abstractmethod
    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        """Apply the filter, returning diagnostics alongside the signal."""

    def apply(self, operator: sp.spmatrix, signal: np.ndarray) -> np.ndarray:
        """Apply the filter and return only the diffused signal."""
        return self.apply_detailed(operator, signal).signal

    def weights_dense(self, operator: sp.spmatrix) -> np.ndarray:
        """The dense impulse-response matrix ``H`` (test/debug; small graphs).

        Column ``v`` of ``H`` is the diffusion of a one-hot signal at ``v``,
        i.e. the per-origin weights ``h_uv`` of eq. (4).
        """
        n = operator.shape[0]
        return self.apply(operator, np.eye(n))


def coerce_signal(signal: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    """Coerce a graph signal to a float64 ``(n, dim)`` matrix.

    Returns the matrix plus whether the input was a bare vector (so callers
    can restore the shape on output).  Shared by every filter and kernel in
    the package — keep validation changes here.
    """
    signal = np.asarray(signal, dtype=np.float64)
    was_vector = signal.ndim == 1
    if was_vector:
        signal = signal[:, None]
    if signal.ndim != 2 or signal.shape[0] != n:
        raise ValueError(
            f"signal must have {n} rows, got shape {signal.shape}"
        )
    return signal, was_vector


class PersonalizedPageRank(GraphFilter):
    """The PPR filter ``a (I − (1−a) A)^{-1}`` (paper eq. 5–6).

    Parameters
    ----------
    alpha:
        Teleport probability ``a`` ∈ (0, 1].  Small alpha ⇒ heavy diffusion
        (long walks, average length ``1/alpha``); large alpha ⇒ light
        diffusion concentrated near the origin.
    tol:
        Power-iteration stopping threshold on the max absolute update.
    max_iterations:
        Iteration cap; with teleport ``alpha`` the error contracts by
        ``(1 − alpha)`` per step, so convergence is geometric.
    method:
        ``"power"`` (default) iterates eq. (7); ``"solve"`` factorizes
        ``I − (1−a) A`` once (exact, used as ground truth in tests).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        *,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        method: str = "power",
    ) -> None:
        check_probability(alpha, "alpha")
        if alpha == 0.0:
            raise ValueError("alpha must be positive (alpha=0 never teleports)")
        check_positive(tol, "tol")
        check_positive(max_iterations, "max_iterations")
        if method not in ("power", "solve"):
            raise ValueError(f"method must be 'power' or 'solve', got {method!r}")
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.method = method

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        if self.method == "solve":
            system = sp.eye(n, format="csc") - (1.0 - self.alpha) * operator.tocsc()
            solver = spla.splu(system.tocsc())
            result = self.alpha * solver.solve(signal)
            out = result[:, 0] if was_vector else result
            return DiffusionResult(out, iterations=1, residual=0.0, converged=True)

        current = signal.copy() * self.alpha  # E(0) after one teleport step
        teleport = self.alpha * signal
        damping = 1.0 - self.alpha
        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            updated = damping * (operator @ current) + teleport
            residual = float(np.max(np.abs(updated - current))) if updated.size else 0.0
            current = updated
            if residual < self.tol:
                break
        out = current[:, 0] if was_vector else current
        return DiffusionResult(
            out,
            iterations=iterations,
            residual=residual,
            converged=residual < self.tol,
        )

    def expected_walk_length(self) -> float:
        """Mean number of steps before teleport: ``(1 − a) / a``.

        The paper describes the diffusion radius as "a short walk of average
        length 1/a"; the geometric walk's exact mean is ``(1−a)/a`` — both
        capture the same scaling in ``1/a``.
        """
        return (1.0 - self.alpha) / self.alpha

    def __repr__(self) -> str:  # pragma: no cover
        return f"PersonalizedPageRank(alpha={self.alpha}, method={self.method!r})"


class HeatKernel(GraphFilter):
    """Heat-kernel filter ``exp(−t (I − A)) = e^{−t} exp(t A)``.

    Implemented as a truncated Taylor series in the operator; the truncation
    order is chosen so the neglected Poisson tail mass is below ``tol``.
    """

    def __init__(self, t: float = 3.0, *, tol: float = 1e-9, max_order: int = 200) -> None:
        check_positive(t, "t")
        check_positive(tol, "tol")
        check_positive(max_order, "max_order")
        self.t = float(t)
        self.tol = float(tol)
        self.max_order = int(max_order)

    def coefficients(self) -> np.ndarray:
        """Poisson weights ``e^{−t} t^k / k!`` truncated at tail mass < tol."""
        coeffs = []
        cumulative = 0.0
        for k in range(self.max_order + 1):
            log_coeff = -self.t + k * log(self.t) - lgamma(k + 1)
            coeff = exp(log_coeff)
            coeffs.append(coeff)
            cumulative += coeff
            if 1.0 - cumulative < self.tol and k >= self.t:
                break
        return np.asarray(coeffs, dtype=np.float64)

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients()
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        tail = float(1.0 - weights.sum())
        return DiffusionResult(
            out, iterations=len(weights), residual=tail, converged=tail < self.tol
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"HeatKernel(t={self.t})"


class PolynomialFilter(GraphFilter):
    """Arbitrary polynomial filter ``sum_k coeffs[k] A^k``."""

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim != 1 or coefficients.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        self.coefficients_array = coefficients

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients_array
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        return DiffusionResult(
            out, iterations=len(weights), residual=0.0, converged=True
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"PolynomialFilter(order={self.coefficients_array.size - 1})"
