"""Graph filters: Personalized PageRank, heat kernel, arbitrary polynomials.

The PPR filter implements eq. (6) of the paper,
``E = a (I − (1−a) A)^{-1} E0``, either by power iteration of eq. (7) (the
synchronous counterpart of the decentralized diffusion) or by a sparse direct
solve (ground truth for tests and small graphs).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import exp, lgamma, log
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils import check_positive, check_probability


@dataclass(frozen=True)
class DiffusionResult:
    """Outcome of a filter application with convergence diagnostics.

    ``diffused_mass_ratio`` is populated by the ε-pruned sparse filter: the
    fraction of the *diffusable* personalization mass (the ``1−α`` share
    that should spread beyond the teleport term) still present in the final
    estimate — 1.0 means nothing measurable was truncated, 0.0 means
    pruning collapsed the diffusion to the bare teleport (see
    :func:`check_pruned_mass`).  ``None`` for filters without pruning.
    """

    signal: np.ndarray
    iterations: int
    residual: float
    converged: bool
    diffused_mass_ratio: float | None = None


class PrunedMassWarning(RuntimeWarning):
    """ε-pruning removed most of the diffusable personalization mass."""


#: Warn when less than this fraction of the diffusable (non-teleport) mass
#: survives ε-pruning.  The degenerate all-pruned fixed point retains
#: exactly ``α·‖E0‖₁`` (teleport only), i.e. a surviving fraction of 0.
PRUNED_MASS_WARN_FRACTION = 0.5


def check_pruned_mass(
    e0_l1: float,
    estimate_l1: float,
    alpha: float,
    epsilon: float,
    *,
    warn: bool = True,
) -> float:
    """Surviving-diffusable-mass ratio of an ε-pruned diffusion, with guard.

    Under the column-stochastic operator an exact PPR diffusion conserves
    the personalization's ℓ₁ mass (sign cancellation aside): ``α·‖E0‖₁`` of
    it stays as the teleport term and the remaining ``(1−α)·‖E0‖₁`` spreads
    over the graph.  Aggressive ε-pruning truncates that spreading share —
    in the limit the iterate collapses to the bare teleport after one sweep
    and faraway nodes score zero (the failure mode behind the reduced-sweep
    observation that ``ε=0.01`` drops overlap@20 to 0.46).  The returned
    ratio is ``(‖E‖₁ − α‖E0‖₁) / ((1−α)·‖E0‖₁)``, clamped to ``[0, 1]``;
    when it falls below :data:`PRUNED_MASS_WARN_FRACTION` (and ``warn``) a
    :class:`PrunedMassWarning` is emitted.  Sign cancellation in mixed-sign
    embeddings also lowers the ratio a little (≈0.7–0.75 for unpruned
    unit-scale Gaussian rows on the benchmark overlays), so the guard is
    deliberately conservative: it fires on collapse, not on the healthy
    regime (≳0.5 at the default ε).
    """
    diffusable = (1.0 - alpha) * e0_l1
    if diffusable <= 0.0:
        return 1.0
    ratio = (estimate_l1 - alpha * e0_l1) / diffusable
    ratio = float(min(1.0, max(0.0, ratio)))
    if warn and ratio < PRUNED_MASS_WARN_FRACTION:
        warnings.warn(
            f"epsilon-pruning (epsilon={epsilon:g}) removed "
            f"{1.0 - ratio:.0%} of the diffusable personalization mass — "
            "the diffusion has degenerated toward the bare teleport term "
            "and distant nodes will score ~0.  Lower epsilon (safe range "
            "for unit-scale embeddings: <= ~3e-3, see "
            "SPARSE_DEFAULT_EPSILON) or rescale it with the "
            "personalization magnitude.",
            PrunedMassWarning,
            stacklevel=3,
        )
    return ratio


class GraphFilter(ABC):
    """A graph filter maps an input signal to a diffused signal.

    Signals are arrays of shape ``(n_nodes,)`` or ``(n_nodes, dim)``; the
    operator is a normalized adjacency (see
    :func:`repro.gsp.normalization.transition_matrix`).
    """

    @abstractmethod
    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        """Apply the filter, returning diagnostics alongside the signal."""

    def apply(self, operator: sp.spmatrix, signal: np.ndarray) -> np.ndarray:
        """Apply the filter and return only the diffused signal."""
        return self.apply_detailed(operator, signal).signal

    def weights_dense(self, operator: sp.spmatrix) -> np.ndarray:
        """The dense impulse-response matrix ``H`` (test/debug; small graphs).

        Column ``v`` of ``H`` is the diffusion of a one-hot signal at ``v``,
        i.e. the per-origin weights ``h_uv`` of eq. (4).
        """
        n = operator.shape[0]
        return self.apply(operator, np.eye(n))


def coerce_signal(
    signal: np.ndarray, n: int, dtype: np.dtype | type = np.float64
) -> tuple[np.ndarray, bool]:
    """Coerce a graph signal to a ``(n, dim)`` float matrix (float64 default).

    Returns the matrix plus whether the input was a bare vector (so callers
    can restore the shape on output).  Shared by every filter and kernel in
    the package — keep validation changes here.  ``dtype`` enables the
    end-to-end float32 pipeline; the default keeps every existing caller
    bit-identical.
    """
    signal = np.asarray(signal, dtype=dtype)
    was_vector = signal.ndim == 1
    if was_vector:
        signal = signal[:, None]
    if signal.ndim != 2 or signal.shape[0] != n:
        raise ValueError(
            f"signal must have {n} rows, got shape {signal.shape}"
        )
    return signal, was_vector


def coerce_sparse_signal(
    signal: np.ndarray | sp.spmatrix, n: int, dtype: np.dtype | type = np.float64
) -> tuple[sp.csr_matrix, bool]:
    """Coerce a graph signal to a float CSR ``(n, dim)`` matrix (float64 default).

    The sparse counterpart of :func:`coerce_signal`: dense inputs (vectors or
    matrices) are converted to CSR, sparse inputs are reformatted/canonicalized
    without densifying.  Returns the matrix plus whether the input was a bare
    vector (dense 1-D); sparse inputs are never vectors.
    """
    if sp.issparse(signal):
        matrix = signal.tocsr().astype(dtype)
        if matrix is signal:  # tocsr/astype may return the input itself
            matrix = matrix.copy()
        if matrix.ndim != 2 or matrix.shape[0] != n:
            raise ValueError(
                f"signal must have {n} rows, got shape {matrix.shape}"
            )
        matrix.sum_duplicates()
        matrix.sort_indices()
        return matrix, False
    dense, was_vector = coerce_signal(signal, n, dtype)
    return sp.csr_matrix(dense), was_vector


def effective_tolerance(tol: float, dtype: np.dtype | type) -> float:
    """Floor a convergence tolerance at what ``dtype`` can resolve.

    A float32 iterate carries ~7 decimal digits (eps ≈ 1.19e-7); asking its
    power iteration for ``residual < 1e-8`` makes the residual plateau at
    rounding noise above the tolerance and the loop spin to the iteration
    cap without ever converging.  The floor is ``32 · eps(dtype)``
    (≈ 3.8e-6 for float32) — comfortably above the plateau for unit-scale
    signals, far below any ranking-relevant score gap.

    float64 requests are returned **unchanged** (the float64 floor,
    ~7.1e-15, sits below every tolerance the library accepts), so the
    default pipeline's convergence behaviour — and its bit-identity
    guarantees — are untouched.
    """
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float64):
        return float(tol)
    return max(float(tol), float(32 * np.finfo(dtype).eps))


def operator_out_degrees(operator: sp.spmatrix) -> np.ndarray:
    """Per-node out-degree of a normalized operator (column nnz), memoized.

    For the column-stochastic operator this is the number of neighbors a
    node's mass spreads over — the quantity the degree-normalized pruning
    thresholds of :class:`SparsePersonalizedPageRank` and
    :func:`repro.gsp.push.forward_push` scale with.  Cached on the operator
    object (operators are immutable and shared, see
    ``CompressedAdjacency._operator_cache``).
    """
    cached = getattr(operator, "_out_degree_cache", None)
    if cached is None:
        if sp.issparse(operator) and operator.format == "csc":
            cached = np.diff(operator.indptr).astype(np.int64)
        else:
            csr = operator.tocsr()
            cached = np.bincount(
                csr.indices, minlength=operator.shape[0]
            ).astype(np.int64)
        try:
            operator._out_degree_cache = cached
        except AttributeError:  # pragma: no cover - exotic matrix types
            pass
    return cached


class PersonalizedPageRank(GraphFilter):
    """The PPR filter ``a (I − (1−a) A)^{-1}`` (paper eq. 5–6).

    Parameters
    ----------
    alpha:
        Teleport probability ``a`` ∈ (0, 1].  Small alpha ⇒ heavy diffusion
        (long walks, average length ``1/alpha``); large alpha ⇒ light
        diffusion concentrated near the origin.  Passing a *sequence* of
        alphas turns the filter into a multi-column variant: the signal must
        then have one column per alpha, and all columns diffuse through a
        shared sweep over the operator (one sparse matmul per iteration
        instead of one per alpha).  Each column stops at its own convergence
        criterion, so column ``c`` is bit-identical to a scalar filter run
        with ``alpha[c]``.
    tol:
        Power-iteration stopping threshold on the max absolute update.
    max_iterations:
        Iteration cap; with teleport ``alpha`` the error contracts by
        ``(1 − alpha)`` per step, so convergence is geometric.
    method:
        ``"power"`` (default) iterates eq. (7); ``"solve"`` factorizes
        ``I − (1−a) A`` once (exact, used as ground truth in tests).
    """

    def __init__(
        self,
        alpha: float | Sequence[float] = 0.5,
        *,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        method: str = "power",
    ) -> None:
        if np.ndim(alpha) == 0:
            alphas = (float(alpha),)
            self.alpha: float | tuple[float, ...] = float(alpha)
        else:
            alphas = tuple(float(a) for a in np.asarray(alpha, dtype=np.float64))
            if not alphas:
                raise ValueError("alpha sequence must be non-empty")
            self.alpha = alphas
        for a in alphas:
            check_probability(a, "alpha")
            if a == 0.0:
                raise ValueError("alpha must be positive (alpha=0 never teleports)")
        check_positive(tol, "tol")
        check_positive(max_iterations, "max_iterations")
        if method not in ("power", "solve"):
            raise ValueError(f"method must be 'power' or 'solve', got {method!r}")
        self._alphas = np.asarray(alphas, dtype=np.float64)
        self._multi = isinstance(self.alpha, tuple)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.method = method

    @staticmethod
    def _solver_for(operator: sp.spmatrix, alpha: float) -> spla.SuperLU:
        """Sparse LU of ``I − (1−a) A``, memoized on the operator itself.

        The factorization depends only on (operator, alpha), and operators
        are immutable and cached per graph (see
        ``CompressedAdjacency._operator_cache``), so the solver cache rides
        on the operator object: every filter instance — and every experiment
        iteration — reuses one factorization per alpha.
        """
        cache: dict[float, spla.SuperLU] | None = getattr(
            operator, "_ppr_lu_cache", None
        )
        if cache is None:
            cache = {}
            try:
                operator._ppr_lu_cache = cache
            except AttributeError:  # pragma: no cover - exotic matrix types
                pass
        solver = cache.get(alpha)
        if solver is None:
            n = operator.shape[0]
            system = sp.eye(n, format="csc") - (1.0 - alpha) * operator.tocsc()
            solver = cache[alpha] = spla.splu(system.tocsc())
        return solver

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        if self._multi:
            if signal.shape[1] != self._alphas.shape[0]:
                raise ValueError(
                    f"multi-alpha filter with {self._alphas.shape[0]} alphas "
                    f"needs one signal column per alpha, got {signal.shape[1]}"
                )
            result = self._apply_multi(operator, signal)
            if was_vector:
                result = DiffusionResult(
                    result.signal[:, 0],
                    result.iterations,
                    result.residual,
                    result.converged,
                )
            return result
        alpha = float(self._alphas[0])
        if self.method == "solve":
            result = alpha * self._solver_for(operator, alpha).solve(signal)
            out = result[:, 0] if was_vector else result
            return DiffusionResult(out, iterations=1, residual=0.0, converged=True)

        teleport = alpha * signal
        current = teleport.copy()  # E(0) after one teleport step
        damping = 1.0 - alpha
        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            updated = damping * (operator @ current) + teleport
            residual = float(np.max(np.abs(updated - current))) if updated.size else 0.0
            current = updated
            if residual < self.tol:
                break
        out = current[:, 0] if was_vector else current
        return DiffusionResult(
            out,
            iterations=iterations,
            residual=residual,
            converged=residual < self.tol,
        )

    def _apply_multi(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        """Per-column-alpha diffusion sharing one operator sweep per step.

        Every active column advances through the same ``operator @ current``
        product; a column freezes at its first sub-``tol`` iterate, exactly
        where the scalar power loop would have stopped for that alpha, so the
        shared sweep changes cost but not a single output bit.
        """
        alphas = self._alphas
        if self.method == "solve":
            result = np.empty_like(signal)
            for a in np.unique(alphas):
                columns = np.flatnonzero(alphas == a)
                solver = self._solver_for(operator, float(a))
                result[:, columns] = float(a) * solver.solve(signal[:, columns])
            return DiffusionResult(result, iterations=1, residual=0.0, converged=True)

        teleport = signal * alphas[None, :]
        current = teleport.copy()
        damping = 1.0 - alphas
        active = np.ones(alphas.shape[0], dtype=bool)
        residuals = np.full(alphas.shape[0], np.inf)
        iterations = np.zeros(alphas.shape[0], dtype=np.int64)
        step = 0
        while np.any(active) and step < self.max_iterations:
            step += 1
            if active.all():
                # No frozen columns yet: sweep the full matrix without the
                # fancy-index copies of the partial path (same values, since
                # slicing by *all* columns is an identity).
                updated = (operator @ current) * damping[None, :]
                updated += teleport
                if updated.size:
                    residual = np.max(np.abs(updated - current), axis=0)
                else:
                    residual = np.zeros(alphas.shape[0])
                current = updated
                residuals[:] = residual
                iterations[:] = step
                active[:] = residual >= self.tol
                continue
            columns = np.flatnonzero(active)
            subset = current[:, columns]
            updated = (operator @ subset) * damping[columns][None, :]
            updated += teleport[:, columns]
            if updated.size:
                residual = np.max(np.abs(updated - subset), axis=0)
            else:
                residual = np.zeros(columns.shape[0])
            current[:, columns] = updated
            residuals[columns] = residual
            iterations[columns] = step
            active[columns] = residual >= self.tol
        return DiffusionResult(
            current,
            iterations=int(iterations.max(initial=0)),
            residual=float(residuals.max(initial=0.0)),
            converged=not bool(np.any(active)),
        )

    def expected_walk_length(self) -> float:
        """Mean number of steps before teleport: ``(1 − a) / a``.

        The paper describes the diffusion radius as "a short walk of average
        length 1/a"; the geometric walk's exact mean is ``(1−a)/a`` — both
        capture the same scaling in ``1/a``.  For a multi-alpha filter this
        reports the mean over the heaviest diffusion (smallest alpha).
        """
        smallest = float(self._alphas.min())
        return (1.0 - smallest) / smallest

    def __repr__(self) -> str:  # pragma: no cover
        return f"PersonalizedPageRank(alpha={self.alpha}, method={self.method!r})"


#: Default pruning threshold of :class:`SparsePersonalizedPageRank`.  At this
#: setting the diffused top-k node rankings overlap the dense filter's by
#: > 0.99 on the benchmark workloads (see
#: ``benchmarks/test_bench_sparse_scale.py`` for the measured ε sweep) while
#: keeping the iterate support — and therefore memory and per-sweep work —
#: a small fraction of ``n_nodes × dim``.  The threshold is *absolute*
#: (``ε · d(u)`` against raw signal values), calibrated for unit-scale
#: document embeddings; rescale ε with the personalization magnitude.  Safe
#: range for unit-scale rows: up to ~3e-3; by ε = 1e-2 the diffusion
#: collapses to the teleport term (overlap@20 = 0.46 in the reduced sweep)
#: and the filter emits a :class:`PrunedMassWarning`.
SPARSE_DEFAULT_EPSILON = 1e-3

#: Row-chunk size of the sparse filter's propagate-and-prune sweep: bounds
#: the transient pre-truncation frontier to ``chunk × dim`` floats so peak
#: memory tracks the *surviving* support, not the touched one.
_SPARSE_CHUNK_ROWS = 8192


class SparsePersonalizedPageRank(GraphFilter):
    """PPR power iteration on sparse signals with degree-normalized ε-pruning.

    Iterates eq. (7) exactly like :class:`PersonalizedPageRank` with
    ``method="power"``, but the iterate lives in *row-sparse* form — an
    active-row index array plus a dense ``(k, dim)`` block — and after every
    sweep, rows too small to matter downstream are truncated: row ``u`` is
    dropped when ``max_c |E_k[u, c]| < ε · d(u)`` where ``d(u)`` is ``u``'s
    out-degree under the operator.  This is exactly the forward-push
    activation rule of :func:`repro.gsp.push.forward_push` applied as
    truncation — a node whose row peak is below ``ε · d(u)`` would spread
    less than ``ε`` to each neighbor, so dropping it perturbs any downstream
    entry by at most ``O(ε)`` per sweep (the same locality lever PowerWalk
    uses to scale PPR to million-node graphs).  Row-sparse is the right
    decomposition because diffusion mixes whole personalization rows: any
    node reached by mass holds a fully dense embedding row, so sparsity
    lives at row, not entry, granularity — and the per-sweep product is a
    sliced-operator × dense-block matmul running at dense-kernel speed over
    only the active ``O(active edges × dim)`` work.

    Density/accuracy trade-off
    --------------------------
    ``epsilon`` buys memory and speed with accuracy, smoothly:

    * ``epsilon = 0`` — no pruning.  The active set grows to the full
      reachable set and every value is **bit-identical** to the dense power
      loop (the sliced matmul accumulates the same products in the same
      order; the skipped terms are exact zeros), so the sparse filter is a
      pure storage-layout change.
    * small ``epsilon`` (the :data:`SPARSE_DEFAULT_EPSILON` regime) — the
      iterate keeps only the mass concentrated around personalization
      holders; the active set is roughly the union of their ``O(1/a)``-hop
      neighborhoods.  Per-entry error is bounded by ``~ε·d_max/a`` in the
      worst case and is orders of magnitude smaller in practice; top-k
      rankings by diffused score are essentially unchanged.
    * large ``epsilon`` — aggressive truncation: memory stays near the
      personalization's own footprint, but faraway nodes lose their (tiny)
      scores entirely, degrading ranking tails first.  Past the point where
      ``ε · d(u)`` exceeds the typical one-hop value ``~(1−a)·|E0|/d`` the
      collapse is total: every neighbor row is pruned on the first sweep
      and the "diffusion" degenerates to the bare teleport ``a·E0`` (the
      reduced benchmark sweep measures overlap@20 = 0.46 at ``ε = 0.01``).
      **Safe range for unit-scale personalization rows: ε ≲ 3e-3** (the
      committed sweep holds top-k overlap ≥ 0.99 at 1e-3 and ≥ 0.96 at
      3e-3); the filter guards the footgun at run time — see
      :func:`check_pruned_mass`, which emits a :class:`PrunedMassWarning`
      when more than half of the diffusable mass was truncated
      (``warn_pruned_mass=False`` silences it for callers, like the
      per-shard workers of :mod:`repro.core.shard`, that re-check the
      guard on an aggregated result).

    Pruning is applied with *hysteresis*: a row that has ever exceeded its
    threshold (or carried initial personalization mass) joins a monotone
    allow-set and is never truncated again, even while it dips under the
    threshold.  Without this, neighboring boundary rows can feed each other
    into a pruned/unpruned limit cycle that never converges; with it the
    allow-set — monotone and bounded — freezes after finitely many sweeps,
    the iteration becomes a linear contraction composed with a fixed
    support projection, and the usual ``residual < tol`` criterion
    terminates.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        *,
        epsilon: float = SPARSE_DEFAULT_EPSILON,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        warn_pruned_mass: bool = True,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        check_probability(alpha, "alpha")
        if alpha == 0.0:
            raise ValueError("alpha must be positive (alpha=0 never teleports)")
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        check_positive(tol, "tol")
        check_positive(max_iterations, "max_iterations")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"dtype must be float32 or float64, got {dtype}"
            )
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.warn_pruned_mass = bool(warn_pruned_mass)
        #: Iterate/output dtype.  float64 (default) is bit-identical to the
        #: dense power loop at ε=0; float32 halves cache memory and keeps
        #: top-k rankings within the tolerance quantified in the committed
        #: ε-sweep benchmark (overlap@100 ≥ 0.98 vs float64).
        self.dtype = dtype

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray | sp.spmatrix
    ) -> DiffusionResult:
        """Diffuse ``signal``; the result's ``.signal`` is a CSR matrix.

        Accepts dense or sparse input; the output is always CSR of shape
        ``(n, dim)`` (a dense vector input yields an ``(n, 1)`` column).
        Use ``.toarray()`` for a dense view.
        """
        n = operator.shape[0]
        matrix, _ = coerce_sparse_signal(signal, n, self.dtype)
        dim = matrix.shape[1]
        alpha = self.alpha
        damping = 1.0 - alpha
        csr_op = (
            operator
            if sp.issparse(operator) and operator.format == "csr"
            else operator.tocsr()
        )
        # In float32 mode the sliced matmuls must not promote back to
        # float64; for float64 astype(copy=False) is a no-op on the cache.
        op_data = csr_op.data.astype(self.dtype, copy=False)
        # Row id of every stored operator entry (reused by each re-slice);
        # int32 halves the footprint and node counts stay far below 2^31.
        row_dtype = np.int32 if n < np.iinfo(np.int32).max else np.int64
        op_entry_rows = np.repeat(
            np.arange(n, dtype=row_dtype), np.diff(csr_op.indptr)
        )

        # Row-sparse state: sorted active-row ids + dense (k, dim) block.
        teleport_rows = np.flatnonzero(np.diff(matrix.indptr)).astype(np.int64)
        teleport_block = matrix[teleport_rows].toarray() * alpha
        cur_rows = teleport_rows
        cur_block = teleport_block.copy()

        if self.epsilon > 0.0:
            thresholds = self.epsilon * operator_out_degrees(operator).astype(
                np.float64
            )
            allowed = np.zeros(n, dtype=bool)
            allowed[teleport_rows] = True
        else:
            thresholds = None
            allowed = None

        # The column-masked slice of the operator is re-usable as long as
        # the active-row set doesn't change (it freezes after a few sweeps).
        sliced_rows: np.ndarray | None = None
        sliced: sp.csr_matrix | None = None
        touched: np.ndarray | None = None
        active_mask = np.zeros(n, dtype=bool)

        residual = np.inf
        converged = False
        iterations = 0
        # float32 iterates cannot resolve tolerances below rounding noise;
        # floor the criterion at the dtype's resolution (float64: unchanged).
        tol = effective_tolerance(self.tol, self.dtype)
        for iterations in range(1, self.max_iterations + 1):
            if sliced_rows is None or not np.array_equal(sliced_rows, cur_rows):
                # Mask the operator's stored entries to the active columns,
                # compacted to the rows they actually touch.  Entry order
                # within each row is the operator's own storage order, so
                # the sliced matmul accumulates the surviving products in
                # exactly the dense loop's sequence (the skipped terms are
                # exact zeros) — this is what keeps ε=0 bit-identical.
                active_mask[:] = False
                active_mask[cur_rows] = True
                keep_entry = active_mask[csr_op.indices]
                counts = np.bincount(op_entry_rows[keep_entry], minlength=n)
                touched = np.flatnonzero(counts).astype(np.int64)
                sliced = sp.csr_matrix(
                    (
                        op_data[keep_entry],
                        np.searchsorted(cur_rows, csr_op.indices[keep_entry]),
                        np.concatenate(([0], np.cumsum(counts[touched]))),
                    ),
                    shape=(touched.shape[0], cur_rows.shape[0]),
                )
                sliced_rows = cur_rows
            # Dense-kernel matmuls over the active edges only, in row
            # chunks: each chunk is pruned the moment it is computed
            # (degree-normalized truncation — the forward-push activation
            # rule — with the monotone allow-set hysteresis described in
            # the class docstring), so the transient frontier of
            # sub-threshold rows never materializes as one big array.
            kept_rows_parts: list[np.ndarray] = []
            kept_value_parts: list[np.ndarray] = []
            for lo in range(0, touched.shape[0], _SPARSE_CHUNK_ROWS):
                hi = min(lo + _SPARSE_CHUNK_ROWS, touched.shape[0])
                chunk_rows = touched[lo:hi]
                chunk = sliced[lo:hi] @ cur_block
                chunk *= damping
                if thresholds is not None and dim:
                    peaks = np.max(np.abs(chunk), axis=1)
                    above = peaks >= thresholds[chunk_rows]
                    allowed[chunk_rows[above]] = True
                    keep = above | allowed[chunk_rows]
                    if not keep.all():
                        chunk_rows = chunk_rows[keep]
                        chunk = chunk[keep]
                kept_rows_parts.append(chunk_rows)
                kept_value_parts.append(chunk)
            kept_rows = (
                np.concatenate(kept_rows_parts)
                if kept_rows_parts
                else np.empty(0, dtype=np.int64)
            )
            new_rows = np.union1d(kept_rows, teleport_rows)
            block = np.zeros((new_rows.shape[0], dim), dtype=self.dtype)
            if kept_rows.shape[0]:
                block[np.searchsorted(new_rows, kept_rows)] = np.concatenate(
                    kept_value_parts
                )
            block[np.searchsorted(new_rows, teleport_rows)] += teleport_block
            # Residual over the union of old and new supports (a vanished
            # row's change is its full old value).
            if np.array_equal(new_rows, cur_rows):
                residual = (
                    float(np.max(np.abs(block - cur_block)))
                    if block.size
                    else 0.0
                )
            else:
                union = np.union1d(new_rows, cur_rows)
                change = np.zeros((union.shape[0], dim), dtype=self.dtype)
                change[np.searchsorted(union, new_rows)] = block
                change[np.searchsorted(union, cur_rows)] -= cur_block
                residual = (
                    float(np.max(np.abs(change))) if change.size else 0.0
                )
            converged = residual < tol
            cur_rows, cur_block = new_rows, block
            if converged:
                break

        mass_ratio = None
        if thresholds is not None:
            mass_ratio = check_pruned_mass(
                float(np.abs(matrix.data).sum()),
                float(np.abs(cur_block).sum()),
                alpha,
                self.epsilon,
                warn=self.warn_pruned_mass,
            )
        return DiffusionResult(
            signal=self._to_csr(cur_rows, cur_block, n, dim),
            iterations=iterations,
            residual=residual,
            converged=converged,
            diffused_mass_ratio=mass_ratio,
        )

    @staticmethod
    def _to_csr(
        rows: np.ndarray, block: np.ndarray, n: int, dim: int
    ) -> sp.csr_matrix:
        """Assemble the row-sparse state into a canonical CSR matrix."""
        nnz = rows.shape[0] * dim
        idx_dtype = (
            np.int32
            if max(nnz, n + 1, dim) < np.iinfo(np.int32).max
            else np.int64
        )
        counts = np.zeros(n, dtype=idx_dtype)
        counts[rows] = dim
        indptr = np.concatenate(
            (np.zeros(1, dtype=idx_dtype), np.cumsum(counts, dtype=idx_dtype))
        )
        indices = np.tile(np.arange(dim, dtype=idx_dtype), rows.shape[0])
        result = sp.csr_matrix(
            (block.ravel(), indices, indptr), shape=(n, dim)
        )
        result.eliminate_zeros()
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SparsePersonalizedPageRank(alpha={self.alpha}, "
            f"epsilon={self.epsilon})"
        )


class HeatKernel(GraphFilter):
    """Heat-kernel filter ``exp(−t (I − A)) = e^{−t} exp(t A)``.

    Implemented as a truncated Taylor series in the operator; the truncation
    order is chosen so the neglected Poisson tail mass is below ``tol``.
    """

    def __init__(self, t: float = 3.0, *, tol: float = 1e-9, max_order: int = 200) -> None:
        check_positive(t, "t")
        check_positive(tol, "tol")
        check_positive(max_order, "max_order")
        self.t = float(t)
        self.tol = float(tol)
        self.max_order = int(max_order)

    def coefficients(self) -> np.ndarray:
        """Poisson weights ``e^{−t} t^k / k!`` truncated at tail mass < tol."""
        coeffs = []
        cumulative = 0.0
        for k in range(self.max_order + 1):
            log_coeff = -self.t + k * log(self.t) - lgamma(k + 1)
            coeff = exp(log_coeff)
            coeffs.append(coeff)
            cumulative += coeff
            if 1.0 - cumulative < self.tol and k >= self.t:
                break
        return np.asarray(coeffs, dtype=np.float64)

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients()
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        tail = float(1.0 - weights.sum())
        return DiffusionResult(
            out, iterations=len(weights), residual=tail, converged=tail < self.tol
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"HeatKernel(t={self.t})"


class PolynomialFilter(GraphFilter):
    """Arbitrary polynomial filter ``sum_k coeffs[k] A^k``."""

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim != 1 or coefficients.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        self.coefficients_array = coefficients

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients_array
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        return DiffusionResult(
            out, iterations=len(weights), residual=0.0, converged=True
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"PolynomialFilter(order={self.coefficients_array.size - 1})"
