"""Graph filters: Personalized PageRank, heat kernel, arbitrary polynomials.

The PPR filter implements eq. (6) of the paper,
``E = a (I − (1−a) A)^{-1} E0``, either by power iteration of eq. (7) (the
synchronous counterpart of the decentralized diffusion) or by a sparse direct
solve (ground truth for tests and small graphs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import exp, lgamma, log
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils import check_positive, check_probability


@dataclass(frozen=True)
class DiffusionResult:
    """Outcome of a filter application with convergence diagnostics."""

    signal: np.ndarray
    iterations: int
    residual: float
    converged: bool


class GraphFilter(ABC):
    """A graph filter maps an input signal to a diffused signal.

    Signals are arrays of shape ``(n_nodes,)`` or ``(n_nodes, dim)``; the
    operator is a normalized adjacency (see
    :func:`repro.gsp.normalization.transition_matrix`).
    """

    @abstractmethod
    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        """Apply the filter, returning diagnostics alongside the signal."""

    def apply(self, operator: sp.spmatrix, signal: np.ndarray) -> np.ndarray:
        """Apply the filter and return only the diffused signal."""
        return self.apply_detailed(operator, signal).signal

    def weights_dense(self, operator: sp.spmatrix) -> np.ndarray:
        """The dense impulse-response matrix ``H`` (test/debug; small graphs).

        Column ``v`` of ``H`` is the diffusion of a one-hot signal at ``v``,
        i.e. the per-origin weights ``h_uv`` of eq. (4).
        """
        n = operator.shape[0]
        return self.apply(operator, np.eye(n))


def coerce_signal(signal: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    """Coerce a graph signal to a float64 ``(n, dim)`` matrix.

    Returns the matrix plus whether the input was a bare vector (so callers
    can restore the shape on output).  Shared by every filter and kernel in
    the package — keep validation changes here.
    """
    signal = np.asarray(signal, dtype=np.float64)
    was_vector = signal.ndim == 1
    if was_vector:
        signal = signal[:, None]
    if signal.ndim != 2 or signal.shape[0] != n:
        raise ValueError(
            f"signal must have {n} rows, got shape {signal.shape}"
        )
    return signal, was_vector


class PersonalizedPageRank(GraphFilter):
    """The PPR filter ``a (I − (1−a) A)^{-1}`` (paper eq. 5–6).

    Parameters
    ----------
    alpha:
        Teleport probability ``a`` ∈ (0, 1].  Small alpha ⇒ heavy diffusion
        (long walks, average length ``1/alpha``); large alpha ⇒ light
        diffusion concentrated near the origin.  Passing a *sequence* of
        alphas turns the filter into a multi-column variant: the signal must
        then have one column per alpha, and all columns diffuse through a
        shared sweep over the operator (one sparse matmul per iteration
        instead of one per alpha).  Each column stops at its own convergence
        criterion, so column ``c`` is bit-identical to a scalar filter run
        with ``alpha[c]``.
    tol:
        Power-iteration stopping threshold on the max absolute update.
    max_iterations:
        Iteration cap; with teleport ``alpha`` the error contracts by
        ``(1 − alpha)`` per step, so convergence is geometric.
    method:
        ``"power"`` (default) iterates eq. (7); ``"solve"`` factorizes
        ``I − (1−a) A`` once (exact, used as ground truth in tests).
    """

    def __init__(
        self,
        alpha: float | Sequence[float] = 0.5,
        *,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        method: str = "power",
    ) -> None:
        if np.ndim(alpha) == 0:
            alphas = (float(alpha),)
            self.alpha: float | tuple[float, ...] = float(alpha)
        else:
            alphas = tuple(float(a) for a in np.asarray(alpha, dtype=np.float64))
            if not alphas:
                raise ValueError("alpha sequence must be non-empty")
            self.alpha = alphas
        for a in alphas:
            check_probability(a, "alpha")
            if a == 0.0:
                raise ValueError("alpha must be positive (alpha=0 never teleports)")
        check_positive(tol, "tol")
        check_positive(max_iterations, "max_iterations")
        if method not in ("power", "solve"):
            raise ValueError(f"method must be 'power' or 'solve', got {method!r}")
        self._alphas = np.asarray(alphas, dtype=np.float64)
        self._multi = isinstance(self.alpha, tuple)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.method = method

    @staticmethod
    def _solver_for(operator: sp.spmatrix, alpha: float) -> spla.SuperLU:
        """Sparse LU of ``I − (1−a) A``, memoized on the operator itself.

        The factorization depends only on (operator, alpha), and operators
        are immutable and cached per graph (see
        ``CompressedAdjacency._operator_cache``), so the solver cache rides
        on the operator object: every filter instance — and every experiment
        iteration — reuses one factorization per alpha.
        """
        cache: dict[float, spla.SuperLU] | None = getattr(
            operator, "_ppr_lu_cache", None
        )
        if cache is None:
            cache = {}
            try:
                operator._ppr_lu_cache = cache
            except AttributeError:  # pragma: no cover - exotic matrix types
                pass
        solver = cache.get(alpha)
        if solver is None:
            n = operator.shape[0]
            system = sp.eye(n, format="csc") - (1.0 - alpha) * operator.tocsc()
            solver = cache[alpha] = spla.splu(system.tocsc())
        return solver

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        if self._multi:
            if signal.shape[1] != self._alphas.shape[0]:
                raise ValueError(
                    f"multi-alpha filter with {self._alphas.shape[0]} alphas "
                    f"needs one signal column per alpha, got {signal.shape[1]}"
                )
            result = self._apply_multi(operator, signal)
            if was_vector:
                result = DiffusionResult(
                    result.signal[:, 0],
                    result.iterations,
                    result.residual,
                    result.converged,
                )
            return result
        alpha = float(self._alphas[0])
        if self.method == "solve":
            result = alpha * self._solver_for(operator, alpha).solve(signal)
            out = result[:, 0] if was_vector else result
            return DiffusionResult(out, iterations=1, residual=0.0, converged=True)

        current = signal.copy() * alpha  # E(0) after one teleport step
        teleport = alpha * signal
        damping = 1.0 - alpha
        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            updated = damping * (operator @ current) + teleport
            residual = float(np.max(np.abs(updated - current))) if updated.size else 0.0
            current = updated
            if residual < self.tol:
                break
        out = current[:, 0] if was_vector else current
        return DiffusionResult(
            out,
            iterations=iterations,
            residual=residual,
            converged=residual < self.tol,
        )

    def _apply_multi(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        """Per-column-alpha diffusion sharing one operator sweep per step.

        Every active column advances through the same ``operator @ current``
        product; a column freezes at its first sub-``tol`` iterate, exactly
        where the scalar power loop would have stopped for that alpha, so the
        shared sweep changes cost but not a single output bit.
        """
        alphas = self._alphas
        if self.method == "solve":
            result = np.empty_like(signal)
            for a in np.unique(alphas):
                columns = np.flatnonzero(alphas == a)
                solver = self._solver_for(operator, float(a))
                result[:, columns] = float(a) * solver.solve(signal[:, columns])
            return DiffusionResult(result, iterations=1, residual=0.0, converged=True)

        teleport = signal * alphas[None, :]
        current = signal.copy() * alphas[None, :]
        damping = 1.0 - alphas
        active = np.ones(alphas.shape[0], dtype=bool)
        residuals = np.full(alphas.shape[0], np.inf)
        iterations = np.zeros(alphas.shape[0], dtype=np.int64)
        step = 0
        while np.any(active) and step < self.max_iterations:
            step += 1
            columns = np.flatnonzero(active)
            subset = current[:, columns]
            updated = (operator @ subset) * damping[columns][None, :]
            updated += teleport[:, columns]
            if updated.size:
                residual = np.max(np.abs(updated - subset), axis=0)
            else:
                residual = np.zeros(columns.shape[0])
            current[:, columns] = updated
            residuals[columns] = residual
            iterations[columns] = step
            active[columns] = residual >= self.tol
        return DiffusionResult(
            current,
            iterations=int(iterations.max(initial=0)),
            residual=float(residuals.max(initial=0.0)),
            converged=not bool(np.any(active)),
        )

    def expected_walk_length(self) -> float:
        """Mean number of steps before teleport: ``(1 − a) / a``.

        The paper describes the diffusion radius as "a short walk of average
        length 1/a"; the geometric walk's exact mean is ``(1−a)/a`` — both
        capture the same scaling in ``1/a``.  For a multi-alpha filter this
        reports the mean over the heaviest diffusion (smallest alpha).
        """
        smallest = float(self._alphas.min())
        return (1.0 - smallest) / smallest

    def __repr__(self) -> str:  # pragma: no cover
        return f"PersonalizedPageRank(alpha={self.alpha}, method={self.method!r})"


class HeatKernel(GraphFilter):
    """Heat-kernel filter ``exp(−t (I − A)) = e^{−t} exp(t A)``.

    Implemented as a truncated Taylor series in the operator; the truncation
    order is chosen so the neglected Poisson tail mass is below ``tol``.
    """

    def __init__(self, t: float = 3.0, *, tol: float = 1e-9, max_order: int = 200) -> None:
        check_positive(t, "t")
        check_positive(tol, "tol")
        check_positive(max_order, "max_order")
        self.t = float(t)
        self.tol = float(tol)
        self.max_order = int(max_order)

    def coefficients(self) -> np.ndarray:
        """Poisson weights ``e^{−t} t^k / k!`` truncated at tail mass < tol."""
        coeffs = []
        cumulative = 0.0
        for k in range(self.max_order + 1):
            log_coeff = -self.t + k * log(self.t) - lgamma(k + 1)
            coeff = exp(log_coeff)
            coeffs.append(coeff)
            cumulative += coeff
            if 1.0 - cumulative < self.tol and k >= self.t:
                break
        return np.asarray(coeffs, dtype=np.float64)

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients()
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        tail = float(1.0 - weights.sum())
        return DiffusionResult(
            out, iterations=len(weights), residual=tail, converged=tail < self.tol
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"HeatKernel(t={self.t})"


class PolynomialFilter(GraphFilter):
    """Arbitrary polynomial filter ``sum_k coeffs[k] A^k``."""

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim != 1 or coefficients.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        self.coefficients_array = coefficients

    def apply_detailed(
        self, operator: sp.spmatrix, signal: np.ndarray
    ) -> DiffusionResult:
        n = operator.shape[0]
        signal, was_vector = coerce_signal(signal, n)
        weights = self.coefficients_array
        current = signal
        total = weights[0] * current
        for weight in weights[1:]:
            current = operator @ current
            total = total + weight * current
        out = total[:, 0] if was_vector else total
        return DiffusionResult(
            out, iterations=len(weights), residual=0.0, converged=True
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"PolynomialFilter(order={self.coefficients_array.size - 1})"
