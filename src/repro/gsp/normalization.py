"""Adjacency normalizations: transition matrices for diffusion.

The paper's eq. (5) uses "the transition matrix of the Markov chain, based on
a suitable normalization of the adjacency matrix".  We provide the three
standard choices; the default throughout the library is the column-stochastic
matrix, under which the PPR filter conserves each node's unit of
personalization mass (column sums of ``H`` equal 1) and matches the
decentralized push semantics: node ``v`` spreads its personalization evenly
over its neighbors.
"""

from __future__ import annotations

from typing import Literal, Union

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import CompressedAdjacency

NormalizationKind = Literal["column", "row", "symmetric"]

GraphLike = Union[nx.Graph, CompressedAdjacency, sp.spmatrix, np.ndarray]


def adjacency_matrix(graph: GraphLike) -> sp.csr_matrix:
    """Coerce any supported graph representation to a CSR adjacency matrix."""
    if isinstance(graph, CompressedAdjacency):
        return graph.to_scipy()
    if isinstance(graph, nx.Graph):
        return CompressedAdjacency.from_networkx(graph).to_scipy()
    if sp.issparse(graph):
        matrix = graph.tocsr().astype(np.float64)
    else:
        matrix = sp.csr_matrix(np.asarray(graph, dtype=np.float64))
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def transition_matrix(
    graph: GraphLike,
    kind: NormalizationKind = "column",
    *,
    fmt: str = "csr",
) -> sp.spmatrix:
    """Normalized operator for diffusion.

    * ``column`` — ``A D^{-1}``: column-stochastic; entry ``(u, v)`` is the
      probability that node ``v`` pushes a unit of mass to neighbor ``u``.
    * ``row`` — ``D^{-1} A``: row-stochastic; entry ``(u, v)`` is the
      probability that a walker at ``u`` steps to ``v``.
    * ``symmetric`` — ``D^{-1/2} A D^{-1/2}``: the GCN-style operator.

    Isolated (degree-0) nodes yield all-zero rows/columns; under PPR their
    diffused value degenerates to the teleport term, which is the correct
    decentralized behaviour for a node with no links.

    ``fmt`` selects the sparse storage: ``"csr"`` (row slicing; the walk and
    power-iteration layout) or ``"csc"`` (column slicing; what the push
    kernel scatters along).

    For a :class:`CompressedAdjacency` (immutable) the normalized operator
    is memoized on the instance per ``(kind, fmt)``, so repeated diffusions
    — in particular per-change incremental refreshes — don't pay the
    O(n + m) normalization and conversion again.  Treat the returned matrix
    as read-only.
    """
    if fmt not in ("csr", "csc"):
        raise ValueError(f"fmt must be 'csr' or 'csc', got {fmt!r}")
    if isinstance(graph, CompressedAdjacency):
        cache = graph._operator_cache
        cached = cache.get((kind, fmt))
        if cached is None:
            csr = cache.get((kind, "csr"))
            if csr is None:
                csr = cache[kind, "csr"] = _freeze(
                    _build_transition(graph.to_scipy(), kind)
                )
            if fmt == "csc":
                cached = cache[kind, "csc"] = _freeze(csr.tocsc())
            else:
                cached = csr
        return cached
    matrix = _build_transition(adjacency_matrix(graph), kind)
    return matrix.tocsc() if fmt == "csc" else matrix


def _freeze(matrix: sp.spmatrix) -> sp.spmatrix:
    """Make a cached operator's buffers read-only.

    The memoized matrix is shared across every diffusion on the adjacency;
    in-place edits (``op.data *= ...``) would silently corrupt them all, so
    accidental mutation should raise instead.
    """
    for attr in ("data", "indices", "indptr"):
        getattr(matrix, attr).flags.writeable = False
    return matrix


def _build_transition(
    matrix: sp.csr_matrix, kind: NormalizationKind
) -> sp.csr_matrix:
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    if kind == "column":
        return (matrix @ sp.diags(inv)).tocsr()
    if kind == "row":
        return (sp.diags(inv) @ matrix).tocsr()
    if kind == "symmetric":
        return (sp.diags(inv_sqrt) @ matrix @ sp.diags(inv_sqrt)).tocsr()
    raise ValueError(f"unknown normalization kind: {kind!r}")
