"""Adjacency normalizations: transition matrices for diffusion.

The paper's eq. (5) uses "the transition matrix of the Markov chain, based on
a suitable normalization of the adjacency matrix".  We provide the three
standard choices; the default throughout the library is the column-stochastic
matrix, under which the PPR filter conserves each node's unit of
personalization mass (column sums of ``H`` equal 1) and matches the
decentralized push semantics: node ``v`` spreads its personalization evenly
over its neighbors.
"""

from __future__ import annotations

from typing import Literal, Union

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import CompressedAdjacency

NormalizationKind = Literal["column", "row", "symmetric"]

GraphLike = Union[nx.Graph, CompressedAdjacency, sp.spmatrix, np.ndarray]


def adjacency_matrix(graph: GraphLike) -> sp.csr_matrix:
    """Coerce any supported graph representation to a CSR adjacency matrix."""
    if isinstance(graph, CompressedAdjacency):
        return graph.to_scipy()
    if isinstance(graph, nx.Graph):
        return CompressedAdjacency.from_networkx(graph).to_scipy()
    if sp.issparse(graph):
        matrix = graph.tocsr().astype(np.float64)
    else:
        matrix = sp.csr_matrix(np.asarray(graph, dtype=np.float64))
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    return matrix


def transition_matrix(
    graph: GraphLike,
    kind: NormalizationKind = "column",
) -> sp.csr_matrix:
    """Normalized operator for diffusion.

    * ``column`` — ``A D^{-1}``: column-stochastic; entry ``(u, v)`` is the
      probability that node ``v`` pushes a unit of mass to neighbor ``u``.
    * ``row`` — ``D^{-1} A``: row-stochastic; entry ``(u, v)`` is the
      probability that a walker at ``u`` steps to ``v``.
    * ``symmetric`` — ``D^{-1/2} A D^{-1/2}``: the GCN-style operator.

    Isolated (degree-0) nodes yield all-zero rows/columns; under PPR their
    diffused value degenerates to the teleport term, which is the correct
    decentralized behaviour for a node with no links.
    """
    matrix = adjacency_matrix(graph)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    if kind == "column":
        return (matrix @ sp.diags(inv)).tocsr()
    if kind == "row":
        return (sp.diags(inv) @ matrix).tocsr()
    if kind == "symmetric":
        return (sp.diags(inv_sqrt) @ matrix @ sp.diags(inv_sqrt)).tocsr()
    raise ValueError(f"unknown normalization kind: {kind!r}")
