"""Graph convolution: one-hop and multi-hop propagation of node signals."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils import check_non_negative


def propagate(operator: sp.spmatrix, signal: np.ndarray, hops: int = 1) -> np.ndarray:
    """Apply ``hops`` graph convolutions: ``operator^hops @ signal``.

    ``signal`` may be a vector (one scalar per node) or a matrix (one
    embedding row per node); the operator acts independently per column,
    exactly the vector-valued propagation of the paper (§II-C).
    """
    check_non_negative(hops, "hops")
    result = np.asarray(signal, dtype=np.float64)
    if result.shape[0] != operator.shape[1]:
        raise ValueError(
            f"signal has {result.shape[0]} rows but operator is {operator.shape}"
        )
    for _ in range(int(hops)):
        result = operator @ result
    return result


def k_hop_aggregate(
    operator: sp.spmatrix,
    signal: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted aggregation of multi-hop propagations.

    Computes ``sum_k weights[k] * operator^k @ signal`` with Horner-free
    accumulation (each power reuses the previous one).  This is the generic
    "graph filter" definition the paper builds on.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    current = np.asarray(signal, dtype=np.float64)
    total = weights[0] * current
    for weight in weights[1:]:
        current = operator @ current
        total = total + weight * current
    return total
