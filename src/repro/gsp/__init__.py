"""Graph signal processing substrate (paper §II-C, §IV-B).

Node values (scalars or embedding vectors) are graph signals; graph filters
aggregate multi-hop propagations of those signals.  The paper's diffusion is
the Personalized PageRank filter ``H = a (I − (1−a) A)^{-1}`` applied to the
matrix of personalization vectors.
"""

from repro.gsp.normalization import (
    adjacency_matrix,
    transition_matrix,
    NormalizationKind,
)
from repro.gsp.convolution import propagate, k_hop_aggregate
from repro.gsp.push import (
    PushResult,
    forward_push,
    push_refresh,
    sparse_forward_push,
    sparse_push_refresh,
)
from repro.gsp.filters import (
    SPARSE_DEFAULT_EPSILON,
    DiffusionResult,
    GraphFilter,
    HeatKernel,
    PersonalizedPageRank,
    PolynomialFilter,
    SparsePersonalizedPageRank,
)
from repro.gsp.spectral import (
    SpectralDecomposition,
    empirical_frequency_response,
    heat_frequency_response,
    is_low_pass,
    ppr_frequency_response,
    smoothness,
)

__all__ = [
    "adjacency_matrix",
    "transition_matrix",
    "NormalizationKind",
    "propagate",
    "k_hop_aggregate",
    "PushResult",
    "forward_push",
    "push_refresh",
    "sparse_forward_push",
    "sparse_push_refresh",
    "SPARSE_DEFAULT_EPSILON",
    "DiffusionResult",
    "GraphFilter",
    "HeatKernel",
    "PersonalizedPageRank",
    "PolynomialFilter",
    "SparsePersonalizedPageRank",
    "SpectralDecomposition",
    "empirical_frequency_response",
    "heat_frequency_response",
    "is_low_pass",
    "ppr_frequency_response",
    "smoothness",
]
