"""Spectral analysis: the frequency-domain view of graph filters (§II-C).

The paper frames PPR and heat kernels as *low-pass* graph filters: they
attenuate signal components aligned with high-frequency eigenvectors of the
graph operator.  This module makes that claim checkable: closed-form
frequency responses, empirical responses measured by filtering eigenvectors,
and the graph Fourier transform for small graphs.

Conventions: for a symmetric operator ``A_sym = D^{-1/2} A D^{-1/2}`` with
eigenvalues ``λ ∈ [−1, 1]``, large λ ≈ 1 is *low frequency* (smooth signals)
and small/negative λ is high frequency.  The PPR response
``h(λ) = a / (1 − (1−a) λ)`` is increasing in λ — i.e. low-pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.gsp.filters import GraphFilter, HeatKernel, PersonalizedPageRank
from repro.utils import check_probability


def ppr_frequency_response(eigenvalues: np.ndarray, alpha: float) -> np.ndarray:
    """Closed-form PPR response ``h(λ) = a / (1 − (1−a) λ)``.

    Follows from the geometric series ``a Σ (1−a)^k λ^k``; valid for
    ``|λ| <= 1`` and ``a ∈ (0, 1]``.
    """
    check_probability(alpha, "alpha")
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    return alpha / (1.0 - (1.0 - alpha) * eigenvalues)


def heat_frequency_response(eigenvalues: np.ndarray, t: float) -> np.ndarray:
    """Closed-form heat-kernel response ``h(λ) = e^{−t (1 − λ)}``."""
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    return np.exp(-t * (1.0 - eigenvalues))


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigendecomposition of a symmetric graph operator.

    Eigenvalues are sorted descending (low frequency first), eigenvectors
    are the corresponding columns.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @classmethod
    def of(cls, operator: sp.spmatrix | np.ndarray) -> "SpectralDecomposition":
        """Dense eigendecomposition (small graphs; O(n^3))."""
        dense = operator.toarray() if sp.issparse(operator) else np.asarray(operator)
        if not np.allclose(dense, dense.T, atol=1e-10):
            raise ValueError(
                "operator must be symmetric; use the 'symmetric' normalization"
            )
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        order = np.argsort(-eigenvalues)
        return cls(eigenvalues[order], eigenvectors[:, order])

    def transform(self, signal: np.ndarray) -> np.ndarray:
        """Graph Fourier transform: project a signal onto the eigenbasis."""
        return self.eigenvectors.T @ np.asarray(signal, dtype=np.float64)

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        """Inverse graph Fourier transform."""
        return self.eigenvectors @ np.asarray(coefficients, dtype=np.float64)


def empirical_frequency_response(
    graph_filter: GraphFilter,
    operator: sp.spmatrix | np.ndarray,
    decomposition: SpectralDecomposition | None = None,
) -> np.ndarray:
    """Measure a filter's response by filtering each eigenvector.

    For a filter that is a function of the operator, filtering eigenvector
    ``v_i`` returns ``h(λ_i) v_i``; the measured ``h(λ_i)`` is recovered by
    projection.  Agrees with the closed forms above (tests pin this).
    """
    decomposition = decomposition or SpectralDecomposition.of(operator)
    filtered = graph_filter.apply(operator, decomposition.eigenvectors)
    # response_i = v_i · (filter v_i)
    return np.einsum("ij,ij->j", decomposition.eigenvectors, filtered)


def is_low_pass(response: np.ndarray, eigenvalues: np.ndarray) -> bool:
    """True when the response is (weakly) increasing with the eigenvalue.

    With eigenvalues sorted descending, a low-pass filter's response must be
    non-increasing along the array.
    """
    response = np.asarray(response, dtype=np.float64)
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    order = np.argsort(-eigenvalues)
    ordered = response[order]
    return bool(np.all(np.diff(ordered) <= 1e-9))


def smoothness(operator_sym: sp.spmatrix | np.ndarray, signal: np.ndarray) -> float:
    """Normalized Laplacian quadratic form ``x^T (I − A_sym) x / x^T x``.

    Smaller is smoother; low-pass filtering must not increase it (tests
    verify this for PPR and heat kernels).
    """
    signal = np.asarray(signal, dtype=np.float64)
    denom = float(signal @ signal)
    if denom == 0.0:
        return 0.0
    lap = signal - (operator_sym @ signal)
    return float(signal @ lap) / denom


def compare_filters_table(
    operator: sp.spmatrix | np.ndarray,
    *,
    alphas: tuple[float, ...] = (0.1, 0.5, 0.9),
    heat_times: tuple[float, ...] = (1.0, 3.0),
) -> list[dict[str, object]]:
    """Tabulate closed-form responses of the paper's filters at key frequencies."""
    decomposition = SpectralDecomposition.of(operator)
    probe_idx = np.linspace(
        0, decomposition.eigenvalues.size - 1, num=min(5, decomposition.eigenvalues.size)
    ).astype(int)
    probes = decomposition.eigenvalues[probe_idx]
    rows: list[dict[str, object]] = []
    for alpha in alphas:
        response = ppr_frequency_response(probes, alpha)
        rows.append(
            {
                "filter": f"PPR(a={alpha:g})",
                **{f"h(λ={lam:.2f})": round(float(r), 3) for lam, r in zip(probes, response)},
            }
        )
    for t in heat_times:
        response = heat_frequency_response(probes, t)
        rows.append(
            {
                "filter": f"heat(t={t:g})",
                **{f"h(λ={lam:.2f})": round(float(r), 3) for lam, r in zip(probes, response)},
            }
        )
    return rows
