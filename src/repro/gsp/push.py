"""Residual-based Forward Push (Gauss–Southwell) for the PPR filter.

Local alternative to power iteration for ``E = a (I − (1−a) A)^{-1} E0``
(paper eq. 6).  The kernel maintains an *estimate* ``p`` and a *residual*
``r`` satisfying the invariant

    p + H r = H r0 ,      H = a (I − (1−a) A)^{-1} ,

starting from ``p = 0, r = r0``.  Each sweep pushes every node whose
residual row still exceeds the threshold: the node absorbs ``a·r_u`` into
its estimate and forwards ``(1−a)·r_u`` to its neighbors through the
operator column ``A[:, u]``.  Work is therefore proportional to the mass
still in the residual — *not* to the size of the graph — which makes the
kernel suitable both for cold-start diffusion and, crucially, for patching
an existing diffusion after a **sparse change** to the personalization:
diffusing the delta ``r0 = E0' − E0`` yields exactly the correction
``H E0' − H E0`` by linearity.

The batched sweep is a Gauss–Southwell relaxation: instead of one node at a
time, every above-threshold node is relaxed per sweep (the vertex-centric
decomposition used by systems like PowerWalk), which vectorizes cleanly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.gsp.filters import (
    coerce_signal,
    coerce_sparse_signal,
    effective_tolerance,
    operator_out_degrees,
)
from repro.kernels import dispatch as kernels
from repro.utils import check_positive, check_probability

#: Use the row-local scatter path when the pushed columns' nonzeros are
#: below ``n / _SPARSE_SWEEP_DIVISOR`` — below it, updating only touched
#: rows beats the dense matmul whose add/argmax cost is Θ(n · dim).
_SPARSE_SWEEP_DIVISOR = 4


@dataclass(frozen=True)
class PushResult:
    """Outcome of a forward-push run with work accounting.

    Attributes
    ----------
    estimate:
        The diffused signal ``≈ H r0`` with shape ``(n_nodes, dim)``.
    residual:
        Final max-abs entry of the residual matrix (the convergence metric).
    residual_l1:
        Final L1 norm of the residual matrix (``Σ|r|`` over every entry).
        For a column-normalized operator ``‖H‖₁ ≤ 1``, so the un-applied
        correction ``H r`` satisfies ``‖H r‖₁ ≤ residual_l1`` — the quantity
        staleness trackers accumulate as the *error bound* left behind by a
        truncated or tolerance-converged push (see
        :class:`repro.churn.StalenessTracker`).
    sweeps:
        Number of batched Gauss–Southwell sweeps performed.
    pushes:
        Total node-push operations (rows relaxed, summed over sweeps).
    edge_operations:
        Total edge traversals (sum of pushed nodes' degrees) — the
        graph-work unit comparable across full and incremental runs.
    converged:
        True when every residual entry fell below the threshold.
    """

    estimate: np.ndarray
    residual: float
    sweeps: int
    pushes: int
    edge_operations: int
    converged: bool
    residual_l1: float = 0.0


def forward_push(
    operator: sp.spmatrix,
    signal: np.ndarray,
    *,
    alpha: float = 0.5,
    tol: float = 1e-8,
    max_sweeps: int = 10_000,
    dtype: np.dtype | type = np.float64,
) -> PushResult:
    """Diffuse ``signal`` with the PPR filter by residual forward push.

    Parameters
    ----------
    operator:
        Normalized adjacency (any kind from
        :func:`repro.gsp.normalization.transition_matrix`); spectral radius
        must be ≤ 1 for the ``(1−alpha)``-contraction to hold.
    signal:
        Initial residual ``r0`` of shape ``(n,)`` or ``(n, dim)``.  Pass the
        personalization matrix for a cold start, or a (mostly zero) delta
        matrix to compute the correction to an existing diffusion.
    tol:
        Push threshold on the max-abs residual entry of a row.  The returned
        estimate deviates from the exact filter output by at most
        ``‖H‖∞ · tol`` element-wise.
    max_sweeps:
        Cap on batched sweeps (each sweep relaxes all active rows at once).
    dtype:
        Residual/estimate dtype; ``float32`` runs the whole sweep (operator
        values included) in single precision.
    """
    check_probability(alpha, "alpha")
    if alpha == 0.0:
        raise ValueError("alpha must be positive (alpha=0 never teleports)")
    check_positive(tol, "tol")
    check_positive(max_sweeps, "max_sweeps")
    dtype = np.dtype(dtype)
    # float32 residuals bottom out at rounding noise; floor the push
    # threshold at the dtype's resolution (float64 passes through).
    tol = effective_tolerance(tol, dtype)

    n = operator.shape[0]
    residual, was_vector = coerce_signal(signal, n, dtype)
    residual = residual.copy()
    estimate = np.zeros_like(residual)

    # Column view: pushing node u scatters along column u of the operator.
    columns = operator.tocsc()
    if columns.data.dtype != dtype:
        columns = columns.astype(dtype)
    col_degrees = np.diff(columns.indptr)

    damping = 1.0 - alpha
    sweeps = 0
    pushes = 0
    edge_operations = 0
    row_peak = np.max(np.abs(residual), axis=1) if residual.size else np.zeros(n)

    n_nodes = residual.shape[0]
    for sweeps in range(1, max_sweeps + 1):
        active = np.flatnonzero(row_peak > tol)
        if active.size == 0:
            sweeps -= 1
            break
        nnz_active = int(col_degrees[active].sum())
        if active.size == n_nodes:
            # Everyone is active (typical cold-start sweeps): push the whole
            # residual through the operator without slicing a copy of it.
            estimate += alpha * residual
            residual = np.asarray(columns @ (damping * residual))
            row_peak = np.max(np.abs(residual), axis=1)
            pushes += int(active.size)
            edge_operations += nnz_active
            continue
        pushed = residual[active]
        estimate[active] += alpha * pushed
        # Scatter (1−a)·r_u along operator column u for every active u, then
        # clear the pushed rows — one sparse slice keeps the cost O(Σ deg u).
        sub = columns[:, active]
        residual[active] = 0.0
        if nnz_active < n_nodes // _SPARSE_SWEEP_DIVISOR:
            # Localized delta: touch only the scatter's support rows so a
            # small change never pays Θ(n · dim) per sweep.
            coo = sub.tocoo()
            kernels.scatter_add_weighted_rows(
                residual, coo.row, coo.col, coo.data, pushed, damping
            )
            touched = np.unique(np.concatenate((active, coo.row)))
            row_peak[touched] = np.max(np.abs(residual[touched]), axis=1)
        else:
            residual += np.asarray(sub @ (damping * pushed))
            row_peak = np.max(np.abs(residual), axis=1)
        pushes += int(active.size)
        edge_operations += nnz_active

    final_residual = float(row_peak.max()) if row_peak.size else 0.0
    out = estimate[:, 0] if was_vector else estimate
    return PushResult(
        estimate=out,
        residual=final_residual,
        sweeps=sweeps,
        pushes=pushes,
        edge_operations=edge_operations,
        converged=final_residual <= tol,
        residual_l1=float(np.abs(residual).sum()),
    )


def _row_peaks(matrix: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Max-abs entry per nonempty row: ``(row_ids, peaks)``."""
    return kernels.csr_row_peaks(matrix.data, matrix.indptr)


def _merge_block_results(
    blocks: list[PushResult], n: int, dim: int, dtype: np.dtype
) -> PushResult:
    """Combine per-column-block push results into one ``(n, dim)`` outcome.

    Columns diffuse independently (pushing a row relaxes all of *its block's*
    columns at once, and blocks never interact), so the merged estimate is an
    ``hstack`` and the work counters add.  ``sweeps``/``residual`` report the
    slowest/worst block — the quantities convergence decisions key on.
    """
    estimate = sp.hstack([b.estimate for b in blocks], format="csr")
    estimate.sort_indices()
    if estimate.dtype != dtype:
        estimate = estimate.astype(dtype)
    return PushResult(
        estimate=estimate,
        residual=max(b.residual for b in blocks),
        sweeps=max(b.sweeps for b in blocks),
        pushes=sum(b.pushes for b in blocks),
        edge_operations=sum(b.edge_operations for b in blocks),
        converged=all(b.converged for b in blocks),
        residual_l1=sum(b.residual_l1 for b in blocks),
    )


def sparse_forward_push(
    operator: sp.spmatrix,
    signal: np.ndarray | sp.spmatrix,
    *,
    alpha: float = 0.5,
    tol: float = 1e-8,
    epsilon: float = 0.0,
    max_sweeps: int = 10_000,
    dtype: np.dtype | type = np.float64,
    n_jobs: int = 1,
) -> PushResult:
    """Multi-column Forward Push keeping estimate and residual in CSR form.

    The sparse counterpart of :func:`forward_push`: the same
    ``p + H r = H r0`` residual bookkeeping and batched Gauss–Southwell
    sweeps, but estimate and residual are ``scipy.sparse`` CSR matrices, so
    memory and per-sweep work scale with the mass actually in flight rather
    than with ``n_nodes × dim``.  The returned ``estimate`` is a CSR matrix.

    ``epsilon`` adds the degree-normalized truncation of
    :class:`repro.gsp.filters.SparsePersonalizedPageRank`: a row is pushed
    only while its peak exceeds ``max(tol, ε · d(u))`` (a node below that
    would spread less than ``ε`` to each neighbor); the sub-threshold
    residual is abandoned, trading bounded accuracy for locality.  With
    ``epsilon=0`` the kernel converges to the same ``tol`` criterion as the
    dense :func:`forward_push`.

    ``dtype=float32`` runs residual, estimate, and operator values in single
    precision.  ``n_jobs > 1`` splits the signal's columns into contiguous
    blocks pushed concurrently on a thread pool (columns never interact —
    only the *activation* of a row couples them, so each block converges to
    the same per-entry ``max(tol, ε·d(u))`` criterion; ``n_jobs=1`` is
    bit-identical to the historical single-block sweep).  Thread parallelism
    pays off on multi-core hosts, especially with the ``nogil`` JIT kernels
    of :mod:`repro.kernels` active.
    """
    check_probability(alpha, "alpha")
    if alpha == 0.0:
        raise ValueError("alpha must be positive (alpha=0 never teleports)")
    check_positive(tol, "tol")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    check_positive(max_sweeps, "max_sweeps")
    check_positive(n_jobs, "n_jobs")
    dtype = np.dtype(dtype)
    # float32 residuals bottom out at rounding noise; floor the push
    # threshold at the dtype's resolution (float64 passes through).
    tol = effective_tolerance(tol, dtype)

    n = operator.shape[0]
    residual, _ = coerce_sparse_signal(signal, n, dtype)
    dim = residual.shape[1]
    if n_jobs > 1 and dim > 1:
        blocks = min(int(n_jobs), dim)
        bounds = np.linspace(0, dim, blocks + 1).astype(np.int64)
        columns = operator.tocsc()

        def _push_block(lo: int, hi: int) -> PushResult:
            return sparse_forward_push(
                columns,
                residual[:, lo:hi].tocsr(),
                alpha=alpha,
                tol=tol,
                epsilon=epsilon,
                max_sweeps=max_sweeps,
                dtype=dtype,
                n_jobs=1,
            )

        with ThreadPoolExecutor(max_workers=blocks) as pool:
            results = list(
                pool.map(
                    _push_block, bounds[:-1].tolist(), bounds[1:].tolist()
                )
            )
        return _merge_block_results(results, n, dim, dtype)
    # Per-sweep (rows, cols, values) contributions to the estimate; summed
    # into one CSR matrix after the loop (nothing reads the estimate
    # mid-loop, and rebuilding it per sweep would cost O(sweeps x nnz)).
    estimate_rows: list[np.ndarray] = []
    estimate_cols: list[np.ndarray] = []
    estimate_values: list[np.ndarray] = []

    columns = operator.tocsc()
    col_degrees = operator_out_degrees(columns)
    if columns.data.dtype != dtype:
        columns = columns.astype(dtype)
    thresholds = np.maximum(tol, epsilon * col_degrees.astype(np.float64))

    damping = 1.0 - alpha
    sweeps = 0
    pushes = 0
    edge_operations = 0
    for sweeps in range(1, max_sweeps + 1):
        rows, peaks = _row_peaks(residual)
        active = rows[peaks > thresholds[rows]]
        if active.size == 0:
            sweeps -= 1
            break
        pushed = residual[active]
        estimate_rows.append(active.repeat(np.diff(pushed.indptr)))
        estimate_cols.append(pushed.indices.astype(np.int64, copy=False))
        estimate_values.append(alpha * pushed.data)
        # Clear the pushed rows, then scatter (1−a)·r_u along operator
        # column u for every active u — all in CSR/CSC arithmetic.
        lens = np.diff(residual.indptr)
        keep_row = np.ones(n, dtype=bool)
        keep_row[active] = False
        keep_entry = np.repeat(keep_row, lens)
        kept_indptr = np.concatenate(
            ([0], np.cumsum(np.where(keep_row, lens, 0)))
        )
        remaining = sp.csr_matrix(
            (residual.data[keep_entry], residual.indices[keep_entry], kept_indptr),
            shape=(n, dim),
        )
        scattered = columns[:, active] @ pushed.multiply(damping)
        residual = (remaining + scattered).tocsr()
        pushes += int(active.size)
        edge_operations += int(col_degrees[active].sum())

    rows, peaks = _row_peaks(residual)
    final_residual = float(peaks.max()) if peaks.size else 0.0
    converged = bool(np.all(peaks <= thresholds[rows])) if rows.size else True
    if estimate_rows:
        estimate = sp.csr_matrix(
            (
                np.concatenate(estimate_values),
                (np.concatenate(estimate_rows), np.concatenate(estimate_cols)),
            ),
            shape=(n, dim),
        )  # the COO constructor sums duplicate (row, col) contributions
    else:
        estimate = sp.csr_matrix((n, dim), dtype=dtype)
    estimate.sort_indices()
    return PushResult(
        estimate=estimate,
        residual=final_residual,
        sweeps=sweeps,
        pushes=pushes,
        edge_operations=edge_operations,
        converged=converged,
        residual_l1=float(np.abs(residual.data).sum()) if residual.nnz else 0.0,
    )


def sparse_push_refresh(
    operator: sp.spmatrix,
    embeddings: np.ndarray | sp.spmatrix,
    delta: np.ndarray | sp.spmatrix,
    *,
    alpha: float = 0.5,
    tol: float = 1e-8,
    epsilon: float = 0.0,
    max_sweeps: int = 10_000,
    dtype: np.dtype | type = np.float64,
    n_jobs: int = 1,
) -> tuple[sp.csr_matrix, PushResult]:
    """Patch a CSR diffusion cache after a sparse personalization change.

    The sparse counterpart of :func:`push_refresh`: given CSR (or dense)
    ``embeddings ≈ H E0`` and a mostly-zero ``delta = E0' − E0``, returns
    ``(embeddings + H delta, push_result)`` with everything kept in CSR form
    — the patched cache never densifies.  ``dtype`` and ``n_jobs`` are
    forwarded to :func:`sparse_forward_push`.
    """
    n = operator.shape[0]
    dtype = np.dtype(dtype)
    base, _ = coerce_sparse_signal(embeddings, n, dtype)
    delta_matrix, _ = coerce_sparse_signal(delta, n, dtype)
    if base.shape != delta_matrix.shape:
        raise ValueError(
            f"embeddings shape {base.shape} does not match "
            f"delta shape {delta_matrix.shape}"
        )
    result = sparse_forward_push(
        operator,
        delta_matrix,
        alpha=alpha,
        tol=tol,
        epsilon=epsilon,
        max_sweeps=max_sweeps,
        dtype=dtype,
        n_jobs=n_jobs,
    )
    patched = (base + result.estimate).tocsr()
    patched.sort_indices()
    return patched, result


def push_refresh(
    operator: sp.spmatrix,
    embeddings: np.ndarray,
    delta: np.ndarray,
    *,
    alpha: float = 0.5,
    tol: float = 1e-8,
    max_sweeps: int = 10_000,
) -> tuple[np.ndarray, PushResult]:
    """Patch an existing diffusion after a sparse personalization change.

    Given ``embeddings ≈ H E0`` and ``delta = E0' − E0`` (zero outside the
    changed rows), returns ``(embeddings + H delta, push_result)`` — the
    diffusion of the *new* personalization — at a cost proportional to the
    magnitude of the change rather than the size of the network.
    """
    n = operator.shape[0]
    base, base_was_vector = coerce_signal(embeddings, n)
    delta_matrix, _ = coerce_signal(delta, n)
    if base.shape != delta_matrix.shape:
        raise ValueError(
            f"embeddings shape {base.shape} does not match "
            f"delta shape {delta_matrix.shape}"
        )
    result = forward_push(
        operator, delta_matrix, alpha=alpha, tol=tol, max_sweeps=max_sweeps
    )
    patched = base + result.estimate  # delta was coerced 2-D, so this is too
    return (patched[:, 0] if base_was_vector else patched), result
