"""Acceleration layer: hot-loop kernels behind a capability dispatcher.

The two wall-clock sinks of the pipeline — the batch walk's per-hop
selection (``repro.core.batch``) and the forward-push sweeps
(``repro.gsp.push``) — call their inner loops through
:mod:`repro.kernels.dispatch`, which picks between the pure-numpy
reference implementations (:mod:`repro.kernels.reference`) and numba JIT
twins (:mod:`repro.kernels._numba`) at runtime.  numba is a *strictly
optional* dependency: absent, everything runs bit-for-bit the numpy path
that has always shipped; present, the JIT twins take over (``nogil`` loops,
cached compilation) without changing any result beyond documented float32
tolerances.

Control with ``REPRO_KERNELS=auto|numba|numpy`` (see
:mod:`repro.kernels.dispatch`); inspect with
:func:`repro.kernels.kernel_info`.

Hot-path consumers import the dispatch *module* and call through its
attributes (``from repro.kernels import dispatch as kernels``), which keeps
one patch point for instrumentation (``benchmarks/profile_kernels.py``)
and lets :func:`reset` switch backends without re-imports.
"""

from repro.kernels.dispatch import (
    csr_row_peaks,
    kernel_info,
    masked_segment_argmax,
    reset,
    scatter_add_weighted_rows,
    sparse_key_lookup,
)

__all__ = [
    "csr_row_peaks",
    "kernel_info",
    "masked_segment_argmax",
    "reset",
    "scatter_add_weighted_rows",
    "sparse_key_lookup",
]
