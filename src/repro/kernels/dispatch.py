"""Capability dispatch between the numpy reference kernels and numba twins.

Selection happens once, lazily, on first kernel call:

* ``REPRO_KERNELS=auto`` (default) — use the numba twins when numba imports
  cleanly, the numpy reference otherwise.
* ``REPRO_KERNELS=numpy`` — force the reference path even with numba
  installed (bit-for-bit today's behavior; also what equivalence tests pin
  against).
* ``REPRO_KERNELS=numba`` — require the JIT path; raises ``RuntimeError``
  at first kernel call when numba is not importable, so a deployment that
  budgeted for JIT speed fails loudly instead of silently running 10× slower.

Consumers call through the module attributes (``kernels.masked_segment_argmax``
etc.) so profiling/instrumentation can wrap them, and so ``reset()`` (tests,
env changes) takes effect without re-importing the world.
"""

from __future__ import annotations

import os
from typing import Any

from repro.kernels import reference

__all__ = [
    "csr_row_peaks",
    "kernel_info",
    "masked_segment_argmax",
    "reset",
    "scatter_add_weighted_rows",
    "sparse_key_lookup",
]

_CHOICES = ("auto", "numba", "numpy")

#: Resolved (backend_name, implementation_module); None until first use.
_resolved: tuple[str, Any] | None = None


def _requested() -> str:
    value = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"
    if value not in _CHOICES:
        raise ValueError(
            f"REPRO_KERNELS must be one of {_CHOICES}, got {value!r}"
        )
    return value


def _load_numba_module() -> Any | None:
    """The numba twin module, or None when numba is not importable."""
    try:
        from repro.kernels import _numba
    except Exception:  # pragma: no cover - defensive: module import is cheap
        return None
    return _numba if _numba.NUMBA_AVAILABLE else None


def _resolve() -> tuple[str, Any]:
    global _resolved
    if _resolved is None:
        requested = _requested()
        impl = None
        if requested in ("auto", "numba"):
            impl = _load_numba_module()
            if impl is None and requested == "numba":
                raise RuntimeError(
                    "REPRO_KERNELS=numba but numba is not importable; "
                    "install numba or unset REPRO_KERNELS"
                )
        _resolved = ("numba", impl) if impl is not None else ("numpy", reference)
    return _resolved


def reset() -> None:
    """Drop the resolved backend so the next call re-reads ``REPRO_KERNELS``."""
    global _resolved
    _resolved = None


def kernel_info() -> dict[str, Any]:
    """Which kernel implementation is live (for reports and benchmarks)."""
    backend, _ = _resolve()
    numba_module = _load_numba_module()
    return {
        "backend": backend,
        "requested": _requested(),
        "numba_available": numba_module is not None,
        "numba_version": (
            getattr(numba_module, "NUMBA_VERSION", None) if numba_module else None
        ),
    }


def masked_segment_argmax(scores, unseen, seg_starts, segments, iota):
    return _resolve()[1].masked_segment_argmax(
        scores, unseen, seg_starts, segments, iota
    )


def sparse_key_lookup(keys, values, wanted):
    return _resolve()[1].sparse_key_lookup(keys, values, wanted)


def csr_row_peaks(data, indptr):
    return _resolve()[1].csr_row_peaks(data, indptr)


def scatter_add_weighted_rows(residual, rows, cols, data, pushed, damping):
    return _resolve()[1].scatter_add_weighted_rows(
        residual, rows, cols, data, pushed, damping
    )


masked_segment_argmax.__doc__ = reference.masked_segment_argmax.__doc__
sparse_key_lookup.__doc__ = reference.sparse_key_lookup.__doc__
csr_row_peaks.__doc__ = reference.csr_row_peaks.__doc__
scatter_add_weighted_rows.__doc__ = reference.scatter_add_weighted_rows.__doc__
