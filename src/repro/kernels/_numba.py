"""Numba JIT twins of the reference kernels (strictly optional dependency).

Importing this module never fails: when numba is absent
``NUMBA_AVAILABLE`` is ``False`` and the module defines no kernels — the
dispatcher (:mod:`repro.kernels.dispatch`) then stays on the numpy
reference path.  When numba is present, each public function matches its
:mod:`repro.kernels.reference` twin's signature and semantics exactly:
bit-identical outputs in float64 (the loops accumulate the same values the
vectorized reference does — max/compare/copy operations, no re-ordered
float summation), dtype-preserving in float32.

All JIT loops release the GIL (``nogil=True``) so the thread-parallel
multi-source push in :func:`repro.gsp.push.sparse_forward_push` scales with
cores once compiled, and use ``cache=True`` so compilation is paid once per
machine, not once per process.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the numpy-only container path
    njit = None
    NUMBA_AVAILABLE = False

NUMBA_VERSION: str | None = None

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_VERSION = getattr(numba, "__version__", "unknown")

    @njit(cache=True, nogil=True)
    def _segment_argmax_fill(scores, unseen, seg_starts, out):
        n_seg = seg_starts.shape[0]
        total = scores.shape[0]
        for s in range(n_seg):
            lo = seg_starts[s]
            hi = seg_starts[s + 1] if s + 1 < n_seg else total
            any_unseen = False
            for i in range(lo, hi):
                if unseen[i]:
                    any_unseen = True
                    break
            best = -np.inf
            best_pos = lo
            for i in range(lo, hi):
                if any_unseen and not unseen[i]:
                    continue
                v = scores[i]
                if v > best:  # strict: first position wins ties
                    best = v
                    best_pos = i
            out[s] = best_pos

    def masked_segment_argmax(scores, unseen, seg_starts, segments, iota):
        out = np.empty(seg_starts.shape[0], dtype=np.int64)
        _segment_argmax_fill(
            scores, unseen, np.asarray(seg_starts, dtype=np.int64), out
        )
        return out

    @njit(cache=True, nogil=True)
    def _key_lookup_fill(keys, values, wanted, out):
        n = keys.shape[0]
        for i in range(wanted.shape[0]):
            w = wanted[i]
            lo = 0
            hi = n
            while lo < hi:
                mid = (lo + hi) >> 1
                if keys[mid] < w:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < n and keys[lo] == w:
                out[i] = values[lo]

    def sparse_key_lookup(keys, values, wanted):
        out = np.zeros(wanted.shape[0], dtype=values.dtype)
        if keys.shape[0]:
            _key_lookup_fill(keys, values, np.asarray(wanted, dtype=np.int64), out)
        return out

    @njit(cache=True, nogil=True)
    def _row_peaks_fill(data, indptr, rows, peaks):
        for k in range(rows.shape[0]):
            lo = indptr[rows[k]]
            hi = indptr[rows[k] + 1]
            m = abs(data[lo])
            for i in range(lo + 1, hi):
                v = abs(data[i])
                if v > m:
                    m = v
            peaks[k] = m

    def csr_row_peaks(data, indptr):
        lens = np.diff(indptr)
        rows = np.flatnonzero(lens)
        peaks = np.empty(rows.shape[0], dtype=data.dtype)
        if rows.shape[0]:
            _row_peaks_fill(data, np.asarray(indptr, dtype=np.int64), rows, peaks)
        return rows, peaks

    @njit(cache=True, nogil=True)
    def _scatter_fill(residual, rows, cols, data, pushed, damping):
        dim = residual.shape[1]
        for k in range(rows.shape[0]):
            r = rows[k]
            c = cols[k]
            w = damping * data[k]
            for j in range(dim):
                residual[r, j] += w * pushed[c, j]

    def scatter_add_weighted_rows(residual, rows, cols, data, pushed, damping):
        _scatter_fill(
            residual,
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            data,
            pushed,
            float(damping),
        )
