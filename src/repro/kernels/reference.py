"""Pure-numpy reference kernels: the canonical hot-loop implementations.

Every function here is a verbatim extraction of an inner loop that used to
live inline in ``repro.core.batch``, ``repro.core.forwarding`` or
``repro.gsp.push`` — moved behind :mod:`repro.kernels.dispatch` so a JIT
twin (:mod:`repro.kernels._numba`) can replace it when numba is installed.
These are the *reference* semantics: the dispatch layer falls back to them
whenever numba is absent, and ``tests/unit/test_kernels.py`` pins the JIT
twins bit-identical (float64) or tolerance-bounded (float32) against them.

Do not "optimize" these in ways that change a single output bit: the batch
walk engine's equivalence contract with the scalar engine, and the sparse
scoring paths' equivalence with their densified counterparts, are proven
through these exact operations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "csr_row_peaks",
    "masked_segment_argmax",
    "scatter_add_weighted_rows",
    "sparse_key_lookup",
]


def masked_segment_argmax(
    scores: np.ndarray,
    unseen: np.ndarray,
    seg_starts: np.ndarray,
    segments: np.ndarray,
    iota: np.ndarray,
) -> np.ndarray:
    """Per-segment argmax of ``scores`` restricted to unseen candidates.

    The fused per-hop selection of the batch walk engine: ``scores`` holds
    one concatenated candidate segment per walk (``seg_starts`` are the
    segment starts, ``segments`` the flat→segment map, ``iota`` an int64
    arange scratch at least as long as ``scores``).  A segment with at least
    one unseen candidate selects only among its unseen ones; a segment whose
    candidates were all visited falls back to the full pool (the paper's
    footnote-9 reset).  Ties break toward the first position — exactly
    ``top_k_indices(scores, 1)`` per segment.  Returns one flat index into
    ``scores`` per segment.  Segments must be non-empty and scores finite
    (``-inf`` is the masking sentinel).
    """
    if unseen.all():
        pool = scores
    else:
        # add.reduceat counts per segment; > 0 is a segment "any".
        has_unseen = np.add.reduceat(unseen, seg_starts) > 0
        allowed = unseen | ~has_unseen[segments]
        pool = np.where(allowed, scores, -np.inf)
    best = np.maximum.reduceat(pool, seg_starts)
    at_best = pool == best[segments]
    size = pool.shape[0]
    positions = np.where(at_best, iota[:size], size)
    return np.minimum.reduceat(positions, seg_starts)


def sparse_key_lookup(
    keys: np.ndarray, values: np.ndarray, wanted: np.ndarray
) -> np.ndarray:
    """Gather ``values`` of sorted ``keys`` at ``wanted``; absent keys → 0.0.

    The CSR-lookup kernel behind
    :func:`repro.core.forwarding.lookup_sorted_keys`: one ``searchsorted``
    over the whole query array, with misses scoring *exactly* ``0.0`` — the
    value a densified copy would hold.  The output dtype follows ``values``
    (float32 score tables stay float32).
    """
    if keys.shape[0] == 0:
        return np.zeros(wanted.shape[0], dtype=values.dtype)
    positions = np.searchsorted(keys, wanted)
    clipped = np.minimum(positions, keys.shape[0] - 1)
    found = keys[clipped] == wanted
    return np.where(found, values[clipped], 0.0)


def csr_row_peaks(
    data: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Max-abs entry per non-empty CSR row: ``(row_ids, peaks)``.

    The forward-push activation scan (``repro.gsp.push``): ``data``/``indptr``
    are a CSR matrix's arrays; rows with no stored entries are skipped
    entirely, so the cost tracks the residual's support.
    """
    lens = np.diff(indptr)
    rows = np.flatnonzero(lens)
    if rows.size == 0:
        return rows, np.empty(0, dtype=data.dtype)
    peaks = np.maximum.reduceat(np.abs(data), indptr[rows])
    return rows, peaks


def scatter_add_weighted_rows(
    residual: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    pushed: np.ndarray,
    damping: float,
) -> None:
    """In-place ``residual[rows] += damping * data[:, None] * pushed[cols]``.

    The localized scatter of the dense forward-push sweep: one COO entry
    ``(rows[k], cols[k], data[k])`` of the sliced operator forwards
    ``damping · data[k] · pushed[cols[k]]`` onto residual row ``rows[k]``.
    ``np.add.at`` handles duplicate target rows (unbuffered accumulation) —
    the part a JIT loop beats by an order of magnitude.
    """
    np.add.at(residual, rows, (damping * data)[:, None] * pushed[cols])
