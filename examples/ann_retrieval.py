"""Approximate nearest neighbors: the centralized-retrieval substrate.

The paper's bi-encoder model (§III-A) casts retrieval as nearest-neighbor
search and leans on ANN indexes (LSH, HNSW) for efficiency.  This example
builds both from-scratch indexes over the synthetic vocabulary, compares
their recall and candidate-set sizes against exact brute force, and shows
they agree on easy queries.

Run: ``python examples/ann_retrieval.py``
"""

import time

import numpy as np

from repro.embeddings import synthetic_word_embeddings, SyntheticCorpusConfig
from repro.embeddings.similarity import dot_scores, l2_normalize
from repro.retrieval import HNSWIndex, LSHIndex
from repro.retrieval.scoring import top_k_indices

SEED = 5
N_QUERIES = 50
K = 5


def main() -> None:
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(n_words=4000, dim=128, n_clusters=300), seed=SEED
    )
    vectors = l2_normalize(model.vectors)
    words = model.words

    rng = np.random.default_rng(SEED + 1)
    query_idx = rng.choice(len(words), size=N_QUERIES, replace=False)
    queries = vectors[query_idx]

    print(f"indexing {len(words)} vectors ({model.dim} dims)...")
    t0 = time.perf_counter()
    lsh = LSHIndex.build(words, vectors, n_planes=10, n_tables=12, seed=SEED)
    t_lsh = time.perf_counter() - t0
    t0 = time.perf_counter()
    hnsw = HNSWIndex.build(words, vectors, m=12, ef_construction=80, seed=SEED)
    t_hnsw = time.perf_counter() - t0
    print(f"  LSH build: {t_lsh:.2f}s   HNSW build: {t_hnsw:.2f}s")

    exact_hits, lsh_hits, hnsw_hits = 0, 0, 0
    candidate_sizes = []
    t_exact = t_l = t_h = 0.0
    for query in queries:
        t0 = time.perf_counter()
        exact = {words[int(i)] for i in top_k_indices(dot_scores(query, vectors), K)}
        t_exact += time.perf_counter() - t0

        t0 = time.perf_counter()
        approx_lsh = {w for w, _ in lsh.query(query, K)}
        t_l += time.perf_counter() - t0
        candidate_sizes.append(lsh.candidates(query).size)

        t0 = time.perf_counter()
        approx_hnsw = {w for w, _ in hnsw.query(query, K, ef=64)}
        t_h += time.perf_counter() - t0

        exact_hits += K
        lsh_hits += len(exact & approx_lsh)
        hnsw_hits += len(exact & approx_hnsw)

    print(f"\nrecall@{K} over {N_QUERIES} queries:")
    print(f"  LSH : {lsh_hits / exact_hits:.2%}  "
          f"(mean candidates {np.mean(candidate_sizes):.0f} / {len(words)}, "
          f"{1000 * t_l / N_QUERIES:.2f} ms/query)")
    print(f"  HNSW: {hnsw_hits / exact_hits:.2%}  "
          f"({1000 * t_h / N_QUERIES:.2f} ms/query)")
    print(f"  exact brute force: {1000 * t_exact / N_QUERIES:.2f} ms/query")


if __name__ == "__main__":
    main()
