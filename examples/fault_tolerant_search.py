"""Fault-tolerant search: surviving crashed peers mid-workload.

The paper's evaluation assumes a perfectly healthy overlay.  This example
crashes 10% of the nodes (plus 5% message loss) with a seeded
:class:`repro.runtime.faults.FaultPlan` and runs the same query workload
three ways:

1. fault-free — the reference recall;
2. under faults with a lone walker — failure detection reroutes around
   dead peers, but coverage shrinks and some queries come back degraded;
3. under the same faults with ``redundancy=2`` — two walkers sharing one
   visited memory, which buys most of the lost recall back.

Run: ``python examples/fault_tolerant_search.py``
"""

import numpy as np

from repro.core import diffuse_embeddings
from repro.core.backends import SparseDiffusionBackend
from repro.core.engine import ResilienceConfig, WalkConfig, run_query
from repro.core.forwarding import EmbeddingGuidedPolicy
from repro.graphs.generators import community_cycle_adjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import FaultInjector, FaultPlan, choose_live_starts

SEED = 17
N_NODES = 1_200
N_DOCS = 100
N_QUERIES = 30
DIM = 32
TTL = 60
K = 10


def build_network():
    adjacency = community_cycle_adjacency(
        N_NODES, 8, n_communities=6, cross_fraction=0.05, seed=SEED
    )
    rng = np.random.default_rng(SEED + 1)
    docs = rng.standard_normal((N_DOCS, DIM))
    docs /= np.linalg.norm(docs, axis=1, keepdims=True)
    nodes = rng.integers(0, N_NODES, size=N_DOCS)
    stores, e0 = {}, np.zeros((N_NODES, DIM))
    for doc_id, (node, vector) in enumerate(zip(nodes, docs)):
        stores.setdefault(int(node), DocumentStore(DIM)).add(doc_id, vector)
        e0[node] += vector
    embeddings = diffuse_embeddings(
        adjacency, e0, alpha=0.5, method=SparseDiffusionBackend(epsilon=1e-4)
    ).embeddings
    return adjacency, stores, EmbeddingGuidedPolicy(embeddings), docs


def run_workload(adjacency, stores, policy, queries, gold, starts, *,
                 faults=None, redundancy=1):
    resilience = (
        ResilienceConfig(redundancy=redundancy) if faults is not None else None
    )
    recalls, degraded, rerouted = [], 0, 0
    for query, want, start in zip(queries, gold, starts):
        result = run_query(
            adjacency, stores, policy, query, int(start),
            WalkConfig(ttl=TTL, k=K), faults=faults, resilience=resilience,
        )
        recalls.append(len(set(result.tracker.doc_ids()) & want) / K)
        degraded += int(result.degraded)
        rerouted += result.rerouted
    return float(np.mean(recalls)), degraded, rerouted


def main() -> None:
    adjacency, stores, policy, docs = build_network()

    rng = np.random.default_rng(SEED + 2)
    picks = rng.integers(0, N_DOCS, size=N_QUERIES)
    queries = docs[picks] + 0.25 * rng.standard_normal((N_QUERIES, DIM))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    gold = [set(np.argsort(-(docs @ q))[:K].tolist()) for q in queries]

    # Crash 10% of the peers and lose 5% of the messages, reproducibly.
    plan = FaultPlan.generate(
        N_NODES, crash_fraction=0.10, drop_probability=0.05, seed=SEED + 3
    )
    starts = choose_live_starts(
        plan, N_QUERIES, np.random.default_rng(SEED + 4)
    )
    print(
        f"overlay: {N_NODES} nodes, {N_DOCS} docs; fault plan: "
        f"{len(plan.crashes)} crashed nodes, "
        f"{plan.drop_probability:.0%} message drop"
    )

    clean, _, _ = run_workload(
        adjacency, stores, policy, queries, gold, starts
    )
    print(f"\nfault-free            recall@{K}: {clean:.3f}")

    lone, lone_degraded, lone_rerouted = run_workload(
        adjacency, stores, policy, queries, gold, starts,
        faults=FaultInjector(plan), redundancy=1,
    )
    print(
        f"faults, lone walker   recall@{K}: {lone:.3f} "
        f"({lone / clean:.0%} of fault-free; {lone_rerouted} reroutes, "
        f"{lone_degraded}/{N_QUERIES} degraded)"
    )

    redundant, red_degraded, red_rerouted = run_workload(
        adjacency, stores, policy, queries, gold, starts,
        faults=FaultInjector(plan), redundancy=2,
    )
    print(
        f"faults, 2 walkers     recall@{K}: {redundant:.3f} "
        f"({redundant / clean:.0%} of fault-free; {red_rerouted} reroutes, "
        f"{red_degraded}/{N_QUERIES} degraded)"
    )
    print(
        "\nredundant walkers share one visited memory, so the second walker "
        "\nwidens coverage instead of retracing the first."
    )


if __name__ == "__main__":
    main()
