"""Churn: nodes join, leave, and update their collections mid-diffusion.

The paper's diffusion is asynchronous precisely so the network can keep
converging while peers come and go ("when new nodes enter the network or
update their document collections" — §IV).  This example runs the real
event-driven protocol and shows:

1. the push-based diffusion quiescing on the initial network,
2. a node updating its document collection — the change re-diffuses,
3. a new node joining with fresh documents,
4. a node leaving — its neighbors re-converge without it,
5. that after every disturbance the estimates still match the closed-form
   PPR diffusion of the *current* topology.

Run: ``python examples/churn_and_updates.py``
"""

import numpy as np

from repro import CompressedAdjacency, PersonalizedPageRank
from repro.embeddings import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs import connected_watts_strogatz
from repro.gsp import transition_matrix
from repro.runtime import AsyncPPRDiffusion

SEED = 11
ALPHA = 0.4


def reference_embeddings(diffusion: AsyncPPRDiffusion) -> np.ndarray:
    """Closed-form PPR diffusion of the network's *current* state."""
    adjacency = diffusion.network.to_adjacency()
    node_ids = sorted(diffusion.network.actors)
    personalization = np.vstack(
        [diffusion.node(i).personalization for i in node_ids]
    )
    operator = transition_matrix(adjacency, "column")
    return PersonalizedPageRank(ALPHA, tol=1e-12, method="solve").apply(
        operator, personalization
    )


def report(diffusion: AsyncPPRDiffusion, stage: str) -> None:
    outcome = diffusion.snapshot()
    error = float(np.max(np.abs(outcome.embeddings - reference_embeddings(diffusion))))
    print(
        f"{stage:<28} nodes={len(outcome.node_ids):>3}  "
        f"messages={outcome.messages:>6}  max error vs closed form={error:.2e}"
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(n_words=500, dim=32, n_clusters=40), seed=SEED
    )

    graph = connected_watts_strogatz(40, 6, 0.2, seed=SEED)
    adjacency = CompressedAdjacency.from_networkx(graph)

    # Each node's personalization = sum of a few random document embeddings.
    personalization = np.vstack(
        [
            model.vectors_for(
                [model.word_at(int(i)) for i in rng.integers(0, 500, size=3)]
            ).sum(axis=0)
            for _ in range(40)
        ]
    )

    diffusion = AsyncPPRDiffusion(
        adjacency, personalization, alpha=ALPHA, tol=1e-9, seed=SEED
    )
    diffusion.run()
    report(diffusion, "initial convergence")

    # --- a node updates its collection -------------------------------------
    new_docs = model.vectors_for([model.word_at(i) for i in (7, 8, 9, 10)])
    diffusion.update_personalization(5, new_docs.sum(axis=0))
    diffusion.run()
    report(diffusion, "after collection update")

    # --- a new peer joins ----------------------------------------------------
    joining_docs = model.vectors_for([model.word_at(i) for i in (100, 101)])
    diffusion.join_node(40, neighbors=[3, 17, 25], personalization=joining_docs.sum(axis=0))
    diffusion.run()
    report(diffusion, "after node 40 joined")

    # --- a peer leaves ---------------------------------------------------------
    diffusion.leave_node(12)
    diffusion.run()
    report(diffusion, "after node 12 left")

    print("\nthe asynchronous protocol re-converges to the closed form after")
    print("every membership or content change — no global coordination needed.")


if __name__ == "__main__":
    main()
