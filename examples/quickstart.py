"""Quickstart: build a P2P network, diffuse, and search.

Walks through the full pipeline of the paper on a small social graph:

1. generate a synthetic word-embedding space (the GloVe stand-in),
2. generate a Facebook-like P2P topology,
3. place documents on nodes and compute personalization vectors,
4. run the PPR diffusion warm-up,
5. forward a query as a biased random walk and inspect the result.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import DiffusionSearchNetwork, FacebookLikeConfig, facebook_like_graph
from repro.embeddings import SyntheticCorpusConfig, synthetic_word_embeddings

SEED = 7


def main() -> None:
    rng = np.random.default_rng(SEED)

    # 1. An embedding space: 3,000 words in 300 dimensions, clustered so that
    #    semantically related words have cosine similarity around 0.72.
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(n_words=3000, dim=300, n_clusters=250), seed=SEED
    )
    print(f"embedding model: {len(model)} words, {model.dim} dims")

    # 2. A 500-node social P2P overlay.
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=500, target_edges=6000, n_egos=8), seed=SEED
    )
    net = DiffusionSearchNetwork(graph, dim=model.dim, alpha=0.5)
    print(f"network: {net.n_nodes} nodes, {graph.number_of_edges()} edges")

    # 3. Scatter 200 documents (words) uniformly over the nodes.  One of them
    #    — the "gold" — is what our query is looking for.
    query_word = model.words[0]
    gold_word, gold_sim = model.most_similar(query_word, top_n=1)[0]
    print(f"query={query_word!r}  gold={gold_word!r}  cosine={gold_sim:.2f}")

    gold_node = int(rng.integers(net.n_nodes))
    net.place_document(gold_word, model.vector(gold_word), gold_node)
    decoys = [w for w in model.words[100:300] if w not in (query_word, gold_word)]
    for word in decoys:
        net.place_document(word, model.vector(word), int(rng.integers(net.n_nodes)))
    print(f"placed {net.n_documents} documents; gold lives on node {gold_node}")

    # 4. Diffusion warm-up: every node's personalization vector spreads over
    #    the graph with Personalized PageRank (teleport 0.5).
    outcome = net.diffuse()
    print(
        f"diffused in {outcome.iterations} synchronous sweeps "
        f"(residual {outcome.residual:.1e})"
    )

    # 5. Search from a node a few hops away from the gold document.
    start_node = (gold_node + net.n_nodes // 3) % net.n_nodes
    result = net.search(model.vector(query_word), start_node, ttl=50, k=3)
    print(f"walk visited {result.unique_nodes_visited} distinct nodes")
    if result.found(gold_word):
        print(
            f"SUCCESS: found {gold_word!r} after {result.hops_to(gold_word)} hops"
        )
    else:
        print("MISS: the walk expired before reaching the gold document")
    print("top results:")
    for item in result.results:
        print(f"  {item.doc_id:>12}  score={item.score:+.3f}  at node {item.node}")


if __name__ == "__main__":
    main()
