"""Sharded parallel precompute: diffuse a 60,000-node network shard by shard.

One process owning the whole operator is the precompute ceiling of the
sparse pipeline.  The ``sharded`` backend lifts it: a community-aware
partition cuts the graph into shards that rarely talk to each other, a
process pool diffuses every shard's slice of the *global* operator in
parallel, and the little probability mass that does cross shard boundaries
is exchanged through residual "mailbox" rounds until it is all settled —
so the result matches the single-process backend to solver tolerance
(and the pool is bit-identical to the serial executor).

Run with ``PYTHONPATH=src python examples/sharded_precompute.py``.
"""

import os
import time

import numpy as np

from repro import DiffusionSearchNetwork
from repro.core import ShardedDiffusionBackend, build_shard_plan
from repro.graphs.generators import community_cycle_adjacency

N_NODES = 60_000
N_COMMUNITIES = 32
N_SHARDS = 4
DIM = 64
N_DOCUMENTS = 500
# Community structure cuts both ways: the locality that makes sharding
# cheap also keeps the diffused score gradient local, so walks starting in
# the wrong community need a longer leash to cross the sparse boundaries.
TTL = 150


def main() -> None:
    rng = np.random.default_rng(0)

    started = time.perf_counter()
    adjacency = community_cycle_adjacency(
        N_NODES, 10, n_communities=N_COMMUNITIES, cross_fraction=0.05, seed=1
    )
    print(
        f"overlay: {adjacency.n_nodes} nodes / {adjacency.n_edges} edges in "
        f"{N_COMMUNITIES} planted communities "
        f"(built in {time.perf_counter() - started:.2f}s)"
    )

    # The plan is what makes the parallelism cheap: label propagation finds
    # the communities, a balanced packing maps them onto shards, and each
    # shard gets its slice of the global normalized operator.  It is
    # memoized on the adjacency — pay once, reuse on every (re-)diffusion.
    started = time.perf_counter()
    plan = build_shard_plan(adjacency, N_SHARDS)
    print(
        f"shard plan: {plan.n_shards} shards, "
        f"{plan.cross_fraction:.1%} of edges cross shards "
        f"(planned in {time.perf_counter() - started:.2f}s)"
    )

    net = DiffusionSearchNetwork(adjacency, dim=DIM, alpha=0.5)
    documents = rng.standard_normal((N_DOCUMENTS, DIM))
    nodes = rng.choice(N_NODES, N_DOCUMENTS, replace=False)
    for i in range(N_DOCUMENTS):
        net.place_document(f"doc-{i}", documents[i], int(nodes[i]))

    workers = max(1, min(N_SHARDS, os.cpu_count() or 1))
    backend = ShardedDiffusionBackend(N_SHARDS, workers=workers)
    started = time.perf_counter()
    outcome = net.diffuse(method=backend)
    elapsed = time.perf_counter() - started
    report = backend.last_report
    print(
        f"sharded diffusion ({workers} workers): {elapsed:.2f}s wall, "
        f"{report.rounds} boundary rounds, converged={outcome.converged}"
    )
    print(
        f"  shard compute: {report.serial_seconds:.2f}s total, "
        f"{report.critical_path_seconds:.2f}s on the critical path "
        f"(x{report.serial_seconds / max(report.critical_path_seconds, 1e-12):.1f} "
        "parallelism available)"
    )

    # Same CSR cache, same walk machinery — queries don't know or care that
    # the precompute was sharded.
    hits = 0
    trials = 40
    for _ in range(trials):
        target = int(rng.integers(N_DOCUMENTS))
        start = int(rng.integers(N_NODES))
        result = net.search(documents[target], start_node=start, ttl=TTL)
        hits += result.found(f"doc-{target}", top=1)
    print(f"{trials} TTL-{TTL} searches: {hits}/{trials} top-1 hits")

    # Churn patches through the same sharded machinery: diffuse the sparse
    # delta, correct the cache — work proportional to the change.
    net.place_document("late-arrival", rng.standard_normal(DIM), node=11)
    refreshed = net.diffuse(method=backend)
    print(
        f"incremental refresh after one placement: "
        f"incremental={refreshed.incremental}"
    )


if __name__ == "__main__":
    main()
