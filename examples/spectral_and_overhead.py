"""Why PPR? The signal-processing and systems view of the design.

Two analyses that motivate the paper's choices:

1. **Spectral** (§II-C): PPR and heat kernels are low-pass graph filters —
   we print their frequency responses on a real topology and verify the
   low-pass property empirically by filtering eigenvectors.
2. **Overhead** (§I/§II-A): what the advertisement phase costs in storage
   and bandwidth compared to document-oriented k-hop indexes and full
   replication.

Run: ``python examples/spectral_and_overhead.py``
"""

import numpy as np

from repro import CompressedAdjacency, FacebookLikeConfig, facebook_like_graph
from repro.gsp import (
    HeatKernel,
    PersonalizedPageRank,
    SpectralDecomposition,
    empirical_frequency_response,
    is_low_pass,
    smoothness,
    transition_matrix,
)
from repro.gsp.spectral import compare_filters_table
from repro.simulation.overhead import overhead_comparison
from repro.simulation.reporting import format_rows

SEED = 3


def main() -> None:
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=250, target_edges=3000, n_egos=5), seed=SEED
    )
    adjacency = CompressedAdjacency.from_networkx(graph)

    # --- 1. spectral view ----------------------------------------------------
    operator = transition_matrix(adjacency, "symmetric")
    decomposition = SpectralDecomposition.of(operator)
    print(
        format_rows(
            compare_filters_table(operator),
            title="closed-form frequency responses h(λ) at sampled eigenvalues",
        )
    )

    for name, graph_filter in (
        ("PPR(a=0.3)", PersonalizedPageRank(0.3, tol=1e-12)),
        ("heat(t=3)", HeatKernel(t=3.0)),
    ):
        response = empirical_frequency_response(graph_filter, operator, decomposition)
        print(f"\n{name}: empirically low-pass? "
              f"{is_low_pass(response, decomposition.eigenvalues)}")

    rng = np.random.default_rng(SEED)
    signal = rng.standard_normal(adjacency.n_nodes)
    filtered = PersonalizedPageRank(0.3, tol=1e-12).apply(operator, signal)
    print(
        "smoothness (Laplacian quadratic form, lower = smoother): "
        f"raw {smoothness(operator, signal):.3f} -> "
        f"PPR-filtered {smoothness(operator, filtered):.3f}"
    )

    # --- 2. systems view ------------------------------------------------------
    print()
    print(
        format_rows(
            overhead_comparison(
                adjacency,
                dim=300,
                documents_per_node=2.5,
                measure_diffusion=True,
                seed=SEED,
            ),
            title="advertisement overhead: diffusion vs index schemes",
        )
    )
    print("\ndiffusion state is constant in the document count (one embedding")
    print("per neighbor); index schemes grow with every stored document.")


if __name__ == "__main__":
    main()
