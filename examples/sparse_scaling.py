"""Sparse-first diffusion: search a 50,000-node network on a laptop budget.

The dense pipeline materializes an ``(n_nodes, dim)`` embedding matrix even
though most nodes hold no documents.  The ``sparse`` backend keeps the
personalization, the diffusion iterate, and the cached embeddings in CSR
form with degree-normalized ε-pruning, so precompute time and memory track
the diffused support instead of the network size — and the walk policies
score CSR rows directly, never densifying.

Run with ``PYTHONPATH=src python examples/sparse_scaling.py``.
"""

import time

import numpy as np

from repro import DiffusionSearchNetwork
from repro.core import SparseDiffusionBackend
from repro.graphs.generators import cycle_union_adjacency

N_NODES = 50_000
DIM = 64
N_DOCUMENTS = 400
TTL = 50


def main() -> None:
    rng = np.random.default_rng(0)

    started = time.perf_counter()
    adjacency = cycle_union_adjacency(N_NODES, 10, seed=1)
    print(
        f"overlay: {adjacency.n_nodes} nodes / {adjacency.n_edges} edges "
        f"(built in {time.perf_counter() - started:.2f}s, no networkx)"
    )

    net = DiffusionSearchNetwork(adjacency, dim=DIM, alpha=0.5)
    documents = rng.standard_normal((N_DOCUMENTS, DIM))
    nodes = rng.choice(N_NODES, N_DOCUMENTS, replace=False)
    for i in range(N_DOCUMENTS):
        net.place_document(f"doc-{i}", documents[i], int(nodes[i]))

    started = time.perf_counter()
    outcome = net.diffuse(method="sparse")
    elapsed = time.perf_counter() - started
    cache = net.csr_embeddings
    density = cache.nnz / float(N_NODES * DIM)
    print(
        f"sparse diffusion: {elapsed:.2f}s, {outcome.iterations} sweeps, "
        f"converged={outcome.converged}"
    )
    print(
        f"CSR embedding cache: {cache.nnz} stored values "
        f"({density:.1%} of the dense {N_NODES}x{DIM} matrix)"
    )

    # Queries walk the network scoring CSR rows directly — the dense matrix
    # is never materialized.
    hits = 0
    trials = 20
    started = time.perf_counter()
    for q in range(trials):
        target = int(rng.integers(N_DOCUMENTS))
        start = int(rng.integers(N_NODES))
        result = net.search(documents[target], start_node=start, ttl=TTL)
        hits += result.found(f"doc-{target}", top=1)
    elapsed = time.perf_counter() - started
    print(
        f"{trials} TTL-{TTL} searches from random nodes: "
        f"{hits}/{trials} top-1 hits, {elapsed / trials * 1e3:.1f} ms/query"
    )

    # Content changes patch the CSR cache incrementally (work ~ the change).
    net.place_document("late-arrival", rng.standard_normal(DIM), node=7)
    refreshed = net.diffuse(method="sparse")
    print(
        f"incremental refresh after one placement: incremental="
        f"{refreshed.incremental}, {refreshed.operations} edge operations"
    )

    # A tighter epsilon trades memory for tail accuracy.
    tight = DiffusionSearchNetwork(adjacency, dim=DIM, alpha=0.5)
    for i in range(N_DOCUMENTS):
        tight.place_document(f"doc-{i}", documents[i], int(nodes[i]))
    tight.diffuse(method=SparseDiffusionBackend(epsilon=1e-4))
    print(
        f"epsilon=1e-4 cache density: "
        f"{tight.csr_embeddings.nnz / float(N_NODES * DIM):.1%} "
        "(keeps more of the score tail)"
    )


if __name__ == "__main__":
    main()
