"""Incremental re-diffusion: keep routing hints fresh under churn, cheaply.

The paper's warm-up (Fig. 2 lines 3-6) diffuses every node's personalization
vector over the whole network.  When a single document is placed or removed,
re-running that warm-up repeats work for thousands of unchanged nodes.  The
``push`` diffusion backend instead patches the cached embeddings by diffusing
only the sparse *delta* — Forward Push work proportional to the change.

This example:

1. builds a 1000-node overlay and places 300 documents,
2. runs the cold-start push diffusion,
3. places one more document and refreshes incrementally,
4. compares the incremental cost against a full re-diffusion and verifies
   both give the same embeddings (to push tolerance).

Run: ``python examples/incremental_refresh.py``
"""

import numpy as np

from repro import DiffusionSearchNetwork, FacebookLikeConfig, facebook_like_graph

SEED = 23
DIM = 64
N_DOCS = 300


def main() -> None:
    rng = np.random.default_rng(SEED)
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=1000, target_edges=15000, n_egos=8), seed=SEED
    )
    net = DiffusionSearchNetwork(graph, dim=DIM, alpha=0.5)
    for i in range(N_DOCS):
        net.place_document(
            f"doc-{i}", rng.standard_normal(DIM), int(rng.integers(net.n_nodes))
        )
    print(f"network: {net.n_nodes} nodes, {net.n_documents} documents")

    # Cold start: the push backend diffuses the full personalization matrix.
    cold = net.diffuse(method="push", tol=1e-8)
    print(
        f"cold-start push: {cold.iterations} sweeps, "
        f"{cold.operations:,} edge operations"
    )

    # One document arrives: only its node's personalization row changes.
    net.place_document("breaking-news", rng.standard_normal(DIM), node=7)
    print(f"placed 1 document; dirty nodes: {sorted(net.dirty_nodes)}")

    incremental = net.diffuse(method="push", tol=1e-8)  # patches, not redoes
    print(
        f"incremental refresh: {incremental.iterations} sweeps, "
        f"{incremental.operations:,} edge operations "
        f"({incremental.operations / cold.operations:.1%} of cold start)"
    )
    assert incremental.incremental

    # A full re-diffusion computes the same embeddings the expensive way.
    full = net.diffuse(method="push", tol=1e-8, incremental=False)
    error = float(np.max(np.abs(incremental.embeddings - full.embeddings)))
    print(
        f"full re-diffusion:   {full.iterations} sweeps, "
        f"{full.operations:,} edge operations"
    )
    print(f"max |incremental − full| = {error:.2e}")

    speedup = full.operations / max(1, incremental.operations)
    print(f"\nthe incremental patch did {speedup:.1f}x less graph work for")
    print("the same routing hints — re-diffusion cost now tracks the churn")
    print("rate instead of the network size.")


if __name__ == "__main__":
    main()
