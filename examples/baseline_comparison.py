"""Baseline comparison: informed diffusion walk vs blind search.

Pits the paper's embedding-guided walk against the unstructured-search
baselines of §II-A — blind random walk, degree-biased (hub-seeking) walk,
and TTL-bounded flooding at an equal message budget — on identical document
placements, and prints success rates and message costs.

Run: ``python examples/baseline_comparison.py``
"""

import numpy as np

from repro import CompressedAdjacency, FacebookLikeConfig, facebook_like_graph
from repro.baselines import flood_query
from repro.core import PrecomputedScorePolicy, RandomWalkPolicy, DegreeBiasedPolicy
from repro.core.engine import WalkConfig, run_query
from repro.embeddings import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.simulation import build_workload
from repro.simulation.runner import IterationSampler
from repro.simulation.reporting import format_rows
from repro.utils.rng import spawn_rngs

SEED = 99
TTL = 50
N_DOCUMENTS = 500
ITERATIONS = 60


def main() -> None:
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(n_words=5000, dim=300, n_clusters=350), seed=SEED
    )
    workload = build_workload(model, n_queries=100, threshold=0.6, seed=SEED + 1)
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=700, target_edges=14000, n_egos=10), seed=SEED + 2
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    sampler = IterationSampler(adjacency, workload)
    config = WalkConfig(ttl=TTL, fanout=1, k=1)

    stats = {
        name: {"success": 0, "messages": 0}
        for name in ("diffusion walk", "random walk", "degree walk", "flooding")
    }

    for rng in spawn_rngs(SEED + 3, ITERATIONS):
        data = sampler.sample(N_DOCUMENTS, rng)
        scores = sampler.diffuse_scores(data.relevance_signal, alpha=0.5)
        start = int(rng.integers(adjacency.n_nodes))
        runs = {
            "diffusion walk": run_query(
                adjacency, data.stores, PrecomputedScorePolicy(scores),
                data.query_embedding, start, config, seed=rng,
            ),
            "random walk": run_query(
                adjacency, data.stores, RandomWalkPolicy(),
                data.query_embedding, start, config, seed=rng,
            ),
            "degree walk": run_query(
                adjacency, data.stores, DegreeBiasedPolicy(adjacency),
                data.query_embedding, start, config, seed=rng,
            ),
            # Flooding gets the same message budget as one TTL-50 walk.
            "flooding": flood_query(
                adjacency, data.stores, data.query_embedding, start,
                config, max_messages=TTL,
            ),
        }
        for name, result in runs.items():
            stats[name]["success"] += result.found(data.gold_word, top=1)
            stats[name]["messages"] += result.messages

    rows = [
        {
            "method": name,
            "success rate": round(values["success"] / ITERATIONS, 3),
            "mean messages": round(values["messages"] / ITERATIONS, 1),
        }
        for name, values in stats.items()
    ]
    print(
        format_rows(
            rows,
            title=(
                f"{ITERATIONS} queries, M={N_DOCUMENTS} documents, TTL={TTL}, "
                "equal message budgets"
            ),
        )
    )
    print("\nthe diffusion hints buy accuracy that blind methods can only")
    print("approach by spending far more messages (flooding's budget runs out")
    print("within ~2 hops of the source).")


if __name__ == "__main__":
    main()
