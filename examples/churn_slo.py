"""SLO-driven refresh scheduling under sustained document churn.

A deployed diffusion index never stands still: documents are added,
moved, and deleted while queries keep arriving.  Re-diffusing on every
change is fresh but ruinous; never refreshing is free but rots.  This
example walks the middle path from ``repro.churn``:

1. a seeded :class:`~repro.churn.ChurnStream` generates a deterministic
   mixed stream of doc add/move/delete and node join/leave events;
2. a :class:`~repro.churn.StalenessTracker` (inside
   :class:`~repro.churn.SignalChurnState`) maintains a *cheap, sound*
   upper bound on the L1 error of the served scores — no diffusion runs
   to know how stale we are;
3. a :class:`~repro.churn.RefreshScheduler` picks defer / incremental /
   full per tick from that bound, a fitted
   :class:`~repro.churn.RefreshCostModel`, and a banked edge-op budget,
   degrading explicitly (counted SLO violations) when starved.

Run: ``python examples/churn_slo.py``
"""

import numpy as np

from repro.churn import (
    ChurnRates,
    ChurnStream,
    RefreshSLO,
    RefreshScheduler,
    SignalChurnState,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.simulation.refresh import SignalRefresher

SEED = 17
N_NODES = 200
N_DOCS = 60
ALPHA = 0.5
TOL = 1e-8
N_EVENTS = 400
EVENTS_PER_TICK = 4
STALENESS_TARGET = 2.0  # L1 units of tolerated score error


def main() -> None:
    adjacency = CompressedAdjacency.from_networkx(
        connected_watts_strogatz(N_NODES, 6, 0.2, seed=SEED)
    )
    operator = transition_matrix(adjacency, "column")
    rng = np.random.default_rng(SEED)
    placement = {f"doc-{d}": int(rng.integers(N_NODES)) for d in range(N_DOCS)}

    stream = ChurnStream(
        N_NODES,
        ChurnRates(doc_add=1.0, doc_move=6.0, doc_delete=1.0,
                   node_leave=0.1, node_join=0.1),
        initial_placement=placement,
        seed=SEED,
    )
    events = stream.events(n=N_EVENTS)
    print(f"{len(events)} churn events over a {N_NODES}-node overlay")

    # Warm up: one converged diffusion establishes the served baseline.
    refresher = SignalRefresher(operator, ALPHA, tol=TOL)
    state = SignalChurnState(N_NODES, initial_placement=placement)
    warmup = refresher.cold_start(state.signal.copy())
    served = warmup.scores
    state.commit_refresh(warmup.residual_l1, full=True)
    full_cost = refresher.cost_estimate("full")
    print(f"warm-up diffusion: {warmup.edge_operations:,d} edge ops\n")

    # The scheduler shares the refresher's own cost model — one pricing
    # brain for both estimation and execution.
    scheduler = RefreshScheduler(
        RefreshSLO(
            staleness_target=STALENESS_TARGET,
            refresh_budget_per_tick=0.6 * full_cost,
            max_banked_ticks=10.0,
        ),
        refresher.cost_model,
    )

    exact_filter = PersonalizedPageRank(ALPHA, method="solve")
    print("tick  action       bound   true err  edge-ops")
    for tick in range(0, len(events), EVENTS_PER_TICK):
        for event in events[tick:tick + EVENTS_PER_TICK]:
            state.apply(event)
        scheduler.tick()
        decision = scheduler.decide(state.bound(), state.dirty_mass)
        ops = 0
        if decision.action != "defer":
            outcome = refresher.refresh(
                decision.action, served, state.baseline, state.signal
            )
            served = outcome.scores
            state.commit_refresh(
                outcome.residual_l1, full=decision.action == "full"
            )
            scheduler.commit(decision, outcome.edge_operations)
            ops = outcome.edge_operations
        exact = exact_filter.apply(operator, state.signal)
        true_error = float(np.abs(served - exact).sum())
        assert state.bound() >= true_error - 1e-9, "bound must stay sound"
        print(
            f"{tick // EVENTS_PER_TICK:4d}  {decision.action:<11} "
            f"{state.bound():7.3f}  {true_error:8.3f}  {ops:9,d}"
        )

    summary = scheduler.summary()
    every_tick = summary["ticks"] * full_cost
    print(
        f"\nscheduler: {summary['decisions']} over {summary['ticks']} ticks, "
        f"{summary['slo_violations']} SLO violations"
    )
    print(
        f"refresh spend: {summary['total_refresh_operations']:,d} edge ops "
        f"vs {every_tick:,.0f} for full-every-tick "
        f"({summary['total_refresh_operations'] / every_tick:.2f}x)"
    )


if __name__ == "__main__":
    main()
