"""Social-network search: the paper's motivating scenario end-to-end.

A P2P social network (friend-graph topology) where users hold topically
clustered content: users in the same community tend to store related
documents (the correlated distribution the paper expects to "aid
diffusion").  We compare search accuracy under uniform vs correlated
placement and under the three teleport probabilities of Fig. 3, printing a
compact accuracy-vs-distance report.

Run: ``python examples/social_network_search.py``
"""

import numpy as np

from repro import CompressedAdjacency, FacebookLikeConfig, facebook_like_graph
from repro.embeddings import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs import label_propagation_communities, summarize_graph
from repro.simulation import (
    AccuracyScenario,
    build_workload,
    format_accuracy_grid,
    run_accuracy_experiment,
)

SEED = 42


def main() -> None:
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(n_words=6000, dim=300, n_clusters=400), seed=SEED
    )
    workload = build_workload(model, n_queries=120, threshold=0.6, seed=SEED + 1)
    print(
        f"workload: {workload.n_queries} queries, "
        f"{len(workload.irrelevant_pool)} irrelevant documents in the pool"
    )

    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=800, target_edges=17000, n_egos=10), seed=SEED + 2
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    print("topology:", summarize_graph(adjacency))

    communities = label_propagation_communities(adjacency, seed=SEED + 3)
    print(f"label propagation found {communities.max() + 1} communities")

    for placement in ("uniform", "correlated"):
        scenario = AccuracyScenario(
            n_documents=500,
            alphas=(0.1, 0.5, 0.9),
            max_distance=6,
            iterations=30,
            placement=placement,
            correlation_mixing=0.1,
            seed=SEED + 4,
        )
        grid = run_accuracy_experiment(
            adjacency, workload, scenario, communities=communities
        )
        print()
        print(
            format_accuracy_grid(
                grid, title=f"accuracy vs distance — {placement} placement"
            )
        )


if __name__ == "__main__":
    main()
