"""Online serving: micro-batching, admission control, deadlines, breaker.

The one-shot engines answer a query; :class:`repro.serving.QueryService`
answers a *stream* of them on the discrete-event clock.  This example runs
the same Poisson workload through the service three ways:

1. comfortable load — queries coalesce into micro-batches, everything OK;
2. 2x overload with tight deadlines — the bounded admission queue sheds
   the excess (``REJECTED``) and late-starting walks return best-so-far
   partials (``DEGRADED``) instead of blowing their deadlines, so p99
   latency stays bounded;
3. the overload again on a faulty overlay (10% crashed peers, 5% message
   drop) with a per-peer circuit breaker that learns which peers to route
   around.

Every submitted query resolves to exactly one OK / DEGRADED / REJECTED
response — never a silent drop.

Run: ``python examples/online_serving.py``
"""

import numpy as np

from repro.core import diffuse_embeddings
from repro.core.backends import SparseDiffusionBackend
from repro.core.engine import ResilienceConfig, WalkConfig
from repro.core.forwarding import EmbeddingGuidedPolicy
from repro.graphs.generators import community_cycle_adjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import FaultInjector, FaultPlan, choose_live_starts
from repro.serving import (
    AdmissionConfig,
    BreakerConfig,
    CostModel,
    MicroBatchConfig,
    Outcome,
    PeerCircuitBreaker,
    QueryRequest,
    QueryService,
    ServingConfig,
)
from repro.simulation.workload import poisson_arrival_times

SEED = 23
N_NODES = 800
N_DOCS = 80
DIM = 32
TTL = 40
HORIZON = 40.0

COST = CostModel(batch_overhead=0.25, per_query=0.01, hop_cost=0.02)
CONFIG = ServingConfig(
    walk=WalkConfig(ttl=TTL, k=10),
    batch=MicroBatchConfig(max_batch=16, max_wait=0.5),
    admission=AdmissionConfig(max_pending=48),
    cost=COST,
)


def build_corpus():
    adjacency = community_cycle_adjacency(
        N_NODES, 8, n_communities=4, cross_fraction=0.05, seed=SEED
    )
    rng = np.random.default_rng(SEED + 1)
    docs = rng.standard_normal((N_DOCS, DIM))
    docs /= np.linalg.norm(docs, axis=1, keepdims=True)
    nodes = rng.integers(0, N_NODES, size=N_DOCS)
    stores, e0 = {}, np.zeros((N_NODES, DIM))
    for doc_id, (node, vector) in enumerate(zip(nodes, docs)):
        stores.setdefault(int(node), DocumentStore(DIM)).add(doc_id, vector)
        e0[node] += vector
    embeddings = diffuse_embeddings(
        adjacency, e0, alpha=0.5, method=SparseDiffusionBackend(epsilon=1e-4)
    ).embeddings
    return adjacency, stores, EmbeddingGuidedPolicy(embeddings), docs


def drive(adjacency, stores, policy, docs, *, rate, deadline_slack=None,
          faults=None, breaker=None):
    """Submit a Poisson stream, drain the clock, return the service."""
    config = CONFIG
    if faults is not None:
        config = ServingConfig(
            walk=CONFIG.walk, batch=CONFIG.batch, admission=CONFIG.admission,
            cost=CONFIG.cost, resilience=ResilienceConfig(max_retries=2),
        )
    service = QueryService(
        adjacency, stores, policy,
        config=config, faults=faults, breaker=breaker, seed=SEED,
    )
    rng = np.random.default_rng(SEED + 2)
    arrivals = poisson_arrival_times(rate, horizon=HORIZON, seed=SEED + 3)
    plan = faults.plan if faults is not None else FaultPlan(adjacency.n_nodes)
    starts = choose_live_starts(plan, len(arrivals), rng)
    for i, (when, start) in enumerate(zip(arrivals, starts)):
        noisy = docs[rng.integers(len(docs))] + 0.15 * rng.standard_normal(DIM)
        request = QueryRequest(
            query_id=i,
            embedding=noisy / np.linalg.norm(noisy),
            start_node=int(start),
            deadline=(
                float(when) + deadline_slack if deadline_slack else np.inf
            ),
        )
        service.queue.schedule_at(float(when), lambda r=request: service.submit(r))
    service.drain()
    return service


def report(label, service):
    stats = service.metrics.summary(horizon=HORIZON)
    counts = {outcome: 0 for outcome in Outcome}
    for response in service.responses:
        counts[response.outcome] += 1
    print(
        f"  {label:<28} p50={stats['p50']:5.2f}  p99={stats['p99']:5.2f}  "
        f"thruput={stats['throughput']:5.2f}/tu  "
        f"OK={counts[Outcome.OK]:4d}  DEGRADED={counts[Outcome.DEGRADED]:3d}  "
        f"REJECTED={counts[Outcome.REJECTED]:3d}"
    )
    assert sum(counts.values()) == stats["submitted"]  # no silent drops
    return stats


def main():
    adjacency, stores, policy, docs = build_corpus()
    # Modeled service capacity in queries per time unit.
    batch = CONFIG.batch.max_batch
    capacity = batch / (
        COST.batch_overhead + COST.per_query * batch + (TTL - 1) * COST.hop_cost
    )
    print(f"modeled capacity ~{capacity:.1f} queries/time-unit\n")

    print("healthy overlay:")
    report("0.5x capacity", drive(adjacency, stores, policy, docs,
                                  rate=0.5 * capacity))
    overloaded = report(
        "2x capacity, deadline=3tu",
        drive(adjacency, stores, policy, docs,
              rate=2.0 * capacity, deadline_slack=3.0),
    )
    assert overloaded["rejected"] > 0, "overload should shed"

    print("\nfaulty overlay (10% crashed, 5% drop), 0.5x capacity:")
    plan = FaultPlan.generate(
        adjacency.n_nodes, crash_fraction=0.10, drop_probability=0.05,
        seed=SEED + 4,
    )
    naive = report(
        "no breaker",
        drive(adjacency, stores, policy, docs,
              rate=0.5 * capacity, faults=FaultInjector(plan)),
    )
    breaker = PeerCircuitBreaker(
        BreakerConfig(failure_threshold=3, window=HORIZON, cooldown=HORIZON / 2)
    )
    with_breaker = report(
        "with circuit breaker",
        drive(adjacency, stores, policy, docs,
              rate=0.5 * capacity, faults=FaultInjector(plan), breaker=breaker),
    )
    print(f"  breaker tripped {breaker.trips} times; "
          f"{len(breaker.quarantined(HORIZON))} peers quarantined at the end")
    assert naive["submitted"] == naive["ok"] + naive["degraded"] + naive["rejected"]
    assert with_breaker["completed"] > 0


if __name__ == "__main__":
    main()
